"""The aequusd stand-alone runtime (``repro serve``).

Binds one site's Aequus stack to wall-clock time and puts the TCP server
in front of it: a tick thread advances the site's discrete-event engine by
the elapsed real time (multiplied by ``time_factor``), so the periodic
services — USS exchange (which also drains the serve plane's usage
ingress), UMS decay, FCS refresh — run on their configured intervals and
every FCS refresh publishes a fresh snapshot to the server.

Also home to the synthetic site builders shared by the CLI, the serve
benchmark, and the tests (a VO -> project -> user policy hierarchy with
seeded random shares and usage).
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from typing import IO, Any, Dict, Optional, Tuple, Union

import numpy as np

from ..core.policy import PolicyTree
from ..core.usage import UsageRecord
from ..obs import trace
from ..obs.evaluate import FairnessRecorder
from ..obs.jsonlog import JsonLogger
from ..obs.registry import MetricsRegistry
from ..services.fcs import FairshareCalculationService
from ..services.network import Network
from ..services.site import AequusSite, SiteConfig
from ..sim.engine import SimulationEngine
from .backend import SiteBackend
from .server import AequusServer, ServerThread

__all__ = ["AequusDaemon", "build_grid_policy", "build_demo_site",
           "serve_site"]


def build_grid_policy(n_users: int, users_per_project: int = 50,
                      projects_per_vo: int = 20, seed: int = 0) -> PolicyTree:
    """A realistic 3-level hierarchy: VOs -> projects -> users."""
    rng = np.random.default_rng(seed)
    tree = PolicyTree()
    users = 0
    vo = 0
    while users < n_users:
        vo_path = f"/vo{vo}"
        tree.set_share(vo_path, int(rng.integers(1, 100)))
        for p in range(projects_per_vo):
            if users >= n_users:
                break
            proj_path = f"{vo_path}/proj{p}"
            tree.set_share(proj_path, int(rng.integers(1, 100)))
            for _ in range(users_per_project):
                if users >= n_users:
                    break
                tree.set_share(f"{proj_path}/u{users}",
                               int(rng.integers(1, 100)))
                users += 1
        vo += 1
    return tree


def build_demo_site(n_users: int, site_name: str = "demo", seed: int = 0,
                    active_fraction: float = 0.7,
                    config: Optional[SiteConfig] = None
                    ) -> Tuple[SimulationEngine, AequusSite]:
    """A single self-contained site with seeded usage, refreshed and ready.

    The engine is advanced far enough that the UMS has merged the seeded
    usage and the FCS has published a snapshot computed from it.
    """
    engine = SimulationEngine()
    # one registry across network + services (+ the server, via serve_site /
    # AequusDaemon): a single METRICS scrape covers the whole stack
    registry = MetricsRegistry(constant_labels={"site": site_name},
                               clock=lambda: engine.now)
    network = Network(engine, registry=registry)
    policy = build_grid_policy(n_users, seed=seed)
    site = AequusSite(site_name, engine, network, policy=policy,
                      config=config or SiteConfig(), registry=registry)
    rng = np.random.default_rng(seed + 1)
    for path in policy.leaf_paths():
        if rng.random() < active_fraction:
            site.uss.record_job(UsageRecord(
                user=path.rsplit("/", 1)[-1], site=site_name,
                start=0.0, end=float(rng.integers(60, 36_000))))
    cfg = site.config
    engine.run_until(max(cfg.ums_refresh_interval, cfg.fcs_refresh_interval,
                         cfg.histogram_interval) + cfg.start_offset + 1.0)
    return engine, site


def serve_site(site: AequusSite, host: str = "127.0.0.1", port: int = 0,
               **server_kwargs) -> ServerThread:
    """Start an aequusd server thread for an existing site stack."""
    backend = SiteBackend.for_site(site)
    server_kwargs.setdefault("registry", site.registry)
    return ServerThread(AequusServer(backend, host, port,
                                     **server_kwargs)).start()


class AequusDaemon:
    """aequusd: one site stack, wall-clock ticked, served over TCP.

    With ``workers=N`` the daemon runs in sharded mode: instead of an
    in-process server thread it publishes every FCS refresh into shared
    memory and forks N per-core worker processes
    (:class:`~repro.serve.workers.WorkerPool`), each serving its own
    ``SO_REUSEPORT`` socket straight from the mapped snapshot.  The
    parent keeps the engine, the tick thread, and usage ingress.
    """

    def __init__(self, engine: SimulationEngine, site: AequusSite,
                 host: str = "127.0.0.1", port: int = 4730,
                 tick_interval: float = 0.5, time_factor: float = 1.0,
                 json_log: Optional[Union[JsonLogger, IO[str]]] = None,
                 recorder: Optional[FairnessRecorder] = None,
                 workers: int = 0,
                 virtual_epoch: Optional[float] = None,
                 **server_kwargs):
        self.engine = engine
        self.site = site
        self.tick_interval = tick_interval
        self.time_factor = time_factor
        #: fleet clock anchor (shared wall-clock timestamp; see repro.grid):
        #: exported in TRACE_EXPORT replies so a collector can align this
        #: process's span timestamps with its peers'
        self.virtual_epoch = virtual_epoch
        self.backend = SiteBackend.for_site(site)
        self.workers = workers
        self.shm_writer = None
        self.pool = None
        self.server: Optional[AequusServer] = None
        self._thread: Optional[ServerThread] = None
        # the service spans (uss/ums/fcs) land in the process-default
        # tracer; surface its eviction counter in this site's scrapes
        trace.default_tracer().bind_registry(site.registry)
        self._trace_spool: Optional[trace.TraceSpool] = None
        if workers > 0:
            from .shm import ShmSnapshotWriter
            from .workers import WorkerPool
            self.shm_writer = ShmSnapshotWriter(site.name)
            self.shm_writer.attach_fcs(site.fcs, irs=site.irs)
            # workers serve from shm and must not export their forked
            # tracer copies; the tick loop drains the parent tracer into a
            # flock-guarded spool any worker can answer TRACE_EXPORT from
            self._trace_spool = trace.TraceSpool(os.path.join(
                tempfile.gettempdir(),
                f"aequus-trace-{site.name}-{os.getpid()}.jsonl"))
            self.pool = WorkerPool(
                self.shm_writer.name, workers, host=host, port=port,
                site=site.name, usage_sink=self.backend.report_usage,
                registry=site.registry,
                refresh_interval=site.config.fcs_refresh_interval,
                trace_spool=self._trace_spool.path,
                trace_meta=self._trace_meta(),
                **server_kwargs)
        else:
            server_kwargs.setdefault("registry", site.registry)
            server_kwargs.setdefault("trace_export", self._trace_export)
            self.server = AequusServer(self.backend, host, port,
                                       **server_kwargs)
            self._thread = ServerThread(self.server)
        self._host = host
        self._ticker: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._stopped = False
        self.ticks = 0
        #: structured operational log: one JSON line per tick, per FCS
        #: refresh (seq, duration, cache hit/miss) and per exchange round;
        #: wall-clock timestamps (this is the real-time runtime)
        self.log: Optional[JsonLogger] = None
        if json_log is not None:
            self.log = json_log if isinstance(json_log, JsonLogger) \
                else JsonLogger(json_log)
            site.fcs.add_refresh_listener(self._log_refresh, fire_now=False)
        #: optional fairness-quality recorder, sampled on the engine's
        #: virtual clock (its periodic tick fires inside _tick_loop runs)
        self.recorder = recorder
        if recorder is not None:
            recorder.attach(engine)

    def _trace_meta(self) -> Dict[str, Any]:
        """Clock-alignment metadata stamped onto TRACE_EXPORT replies."""
        return {"site": self.site.name,
                "virtual_epoch": self.virtual_epoch,
                "time_factor": self.time_factor}

    def _trace_export(self) -> Dict[str, Any]:
        """TRACE_EXPORT hook (single-server mode): drain the live tracer."""
        tracer = trace.default_tracer()
        body = self._trace_meta()
        body["events"] = tracer.drain()
        body["dropped"] = tracer.dropped
        body["engine_now"] = self.engine.now
        return body

    def _pump_trace_spool(self) -> None:
        """Move freshly recorded spans from the tracer ring to the spool."""
        tracer = trace.default_tracer()
        if tracer.enabled:
            self._trace_spool.append(tracer.drain())

    def _log_refresh(self, fcs: FairshareCalculationService) -> None:
        horizons = fcs.usage_horizons()
        staleness = [max(0.0, self.engine.now - h) for h in horizons.values()]
        self.log.log("refresh", site=fcs.site, seq=fcs.publishes,
                     duration=round(fcs.last_refresh_seconds, 6),
                     cache="hit" if fcs.last_refresh_hit else "miss",
                     users=len(fcs.values_view()),
                     origins=len(horizons),
                     staleness_max=round(max(staleness), 3)
                     if staleness else 0.0)

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        return self.pool.port if self.pool is not None else self.server.port

    def start(self) -> "AequusDaemon":
        if self.pool is not None:
            # fork before any daemon thread exists: a child must never
            # inherit a copy of a running thread's locks
            self.pool.start()
            self.pool.wait_ready()
        else:
            self._thread.start()
        self._stopped = False
        self._stopping.clear()
        self._ticker = threading.Thread(target=self._tick_loop,
                                        name="aequusd-tick", daemon=True)
        self._ticker.start()
        return self

    def _tick_loop(self) -> None:
        last = time.monotonic()
        while not self._stopping.wait(self.tick_interval):
            now = time.monotonic()
            elapsed = (now - last) * self.time_factor
            last = now
            sent_before = self.site.uss.exchanges_sent if self.log else 0
            t0 = time.perf_counter()
            # the engine is only ever advanced from this thread; server
            # threads reach the stack through snapshots and ingress queues.
            # Pump the USS transport on both sides of the advance: inbound
            # exchanges buffered by a socket transport (repro.grid) are
            # applied on this thread, before the services tick and again
            # right after, so a freshly arrived delta never waits a full
            # tick to land (the sim transport's pump is a no-op).
            self.site.network.pump()
            self.engine.run_until(self.engine.now + elapsed)
            self.site.network.pump()
            if self._trace_spool is not None:
                self._pump_trace_spool()
            self.ticks += 1
            if self.log is not None:
                self.log.log("tick", n=self.ticks,
                             engine_now=round(self.engine.now, 3),
                             advanced=round(elapsed, 3),
                             duration=round(time.perf_counter() - t0, 6))
                exchanged = self.site.uss.exchanges_sent - sent_before
                if exchanged:
                    self.log.log("exchange", site=self.site.name,
                                 rounds=exchanged,
                                 seq=self.site.uss._seq,
                                 stale=self.site.uss.exchanges_stale,
                                 skipped=self.site.uss.exchanges_skipped)

    def stop(self) -> None:
        """Shut the daemon down; idempotent and safe before :meth:`start`.

        Supervisors double-signal (SIGTERM then SIGKILL-escalation paths
        call stop again) and test teardowns race construction failures, so
        stopping twice — or stopping a daemon that never started — must be
        a no-op, and a wedged tick thread must not hang shutdown (the join
        is bounded; the thread is a daemon thread either way).
        """
        if self._stopped:
            return
        self._stopped = True
        self._stopping.set()
        if self._ticker is not None:
            self._ticker.join(5.0)
            self._ticker = None
        if self.pool is not None:
            self.pool.stop()
            self.shm_writer.close()
            self._trace_spool.unlink()
        elif self._thread is not None:
            self._thread.stop()
        if self.recorder is not None:
            self.recorder.stop()
        self.site.stop()

    def stats(self) -> Dict[str, int]:
        if self.pool is not None:
            return dict(self.pool.aggregate(), ticks=self.ticks)
        return dict(self.server.stats, ticks=self.ticks)
