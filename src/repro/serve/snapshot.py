"""Atomic fairshare snapshots for the serve plane.

Every FCS refresh publishes one :class:`FairshareSnapshot`: an immutable,
read-optimized view of the refresh result (projected values, name index,
policy epoch, publish sequence number, computation timestamp).  Readers in
other threads pick up the *current* snapshot with a single attribute read —
publication is one reference assignment, so a reader observes either the
whole previous refresh or the whole new one, never a mix.  A batch of
queries resolves the snapshot once and serves every key from it, which is
what makes torn batches impossible by construction.

The store never blocks readers and the publisher never waits for readers:
old snapshots stay alive for exactly as long as someone holds a reference.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from .protocol import ERR_NOT_A_LEAF, ERR_UNKNOWN_USER, NO_LEAF_ID

if TYPE_CHECKING:
    from ..core.flat import FlatFairshare
    from ..core.vector import FairshareVector
    from ..services.fcs import FairshareCalculationService

__all__ = ["FairshareSnapshot", "SnapshotStore", "snapshot_from_fcs"]


@dataclass(frozen=True)
class FairshareSnapshot:
    """One refresh worth of servable fairshare state.

    ``values`` and ``by_name`` are read-only mapping views over the FCS's
    internal dicts; the FCS replaces those dicts wholesale on every
    recomputation (it never mutates them in place), so a snapshot taken at
    publish time stays internally consistent forever.  ``identity_map`` is
    a point-in-time copy (it is the one FCS table that mutates in place).
    """

    site: str
    #: monotonically increasing publish number (the FCS refresh counter)
    seq: int
    #: policy epoch the refresh was computed against
    epoch: Any
    #: virtual-clock time of the refresh
    computed_at: float
    projection: str
    resolution: int
    unknown_user_value: float
    values: Mapping[str, float]
    by_name: Mapping[str, str]
    identity_map: Mapping[str, str] = field(default_factory=dict)
    #: the array-backed refresh result, for vector queries (leaf paths only)
    result: Optional["FlatFairshare"] = None
    #: per-origin usage horizons (virtual time) incorporated by ``values``
    #: — the freshness contract of this snapshot (DESIGN.md §10)
    horizons: Mapping[str, float] = field(default_factory=dict)
    #: projected values as a float64 array aligned with
    #: ``result.leaf_paths`` (the shared-memory publisher's payload)
    values_vec: Optional[Any] = None
    #: leaf-table generation — bumps when the policy recompiles and leaf
    #: row numbers may change; tags binary-protocol leaf ids
    leaf_gen: int = 0

    # -- queries ------------------------------------------------------------

    def resolve_path(self, identity: str) -> Optional[str]:
        identity = self.identity_map.get(identity, identity)
        if identity.startswith("/") and identity in self.values:
            return identity
        return self.by_name.get(identity)

    def lookup(self, identity: str) -> Tuple[float, bool]:
        """Projected value and whether the identity is actually known."""
        path = self.resolve_path(identity)
        if path is None:
            return self.unknown_user_value, False
        value = self.values.get(path)
        if value is None:
            return self.unknown_user_value, False
        return value, True

    def fairshare_value(self, identity: str) -> float:
        return self.lookup(identity)[0]

    def vector(self, identity: str) -> Optional["FairshareVector"]:
        """Leaf fairshare vector, or None for unknown/non-leaf identities."""
        if self.result is None:
            return None
        path = self.resolve_path(identity)
        if path is None or path not in self.result.flat.leaf_slot:
            return None
        return self.result.vector(path)

    # -- binary-protocol surface (shared with ShmEpochView) -----------------

    def stamp(self) -> int:
        """Seqlock stamp: immutable snapshots are trivially stable (the
        shared-memory epoch views give this method real teeth)."""
        return 0

    def still(self, stamp: int) -> bool:
        return True

    def resolve_leaf(self, identity: str) -> Tuple[float, bool, int]:
        """(value, known, leaf id) — the binary GET_FAIRSHARE triple.

        The leaf id is the identity's row in ``result.leaf_paths`` (valid
        for this snapshot's ``leaf_gen``), or :data:`NO_LEAF_ID` when the
        identity is unknown or has no stable row.
        """
        path = self.resolve_path(identity)
        if path is None:
            return self.unknown_user_value, False, NO_LEAF_ID
        value = self.values.get(path)
        if value is None:
            return self.unknown_user_value, False, NO_LEAF_ID
        row = self.result.flat.leaf_slot.get(path) \
            if self.result is not None else None
        return value, True, row if row is not None else NO_LEAF_ID

    def lookup_id(self, leaf_id: int) -> Optional[float]:
        """Projected value by leaf row (binary by-id fast path)."""
        vec = self.values_vec
        if vec is None or not (0 <= leaf_id < len(vec)):
            return None
        return float(vec[leaf_id])

    def vector_elements(self, leaf_id: int) -> Optional[List[float]]:
        if self.result is None:
            return None
        depths = self.result.leaf_depths
        if not (0 <= leaf_id < len(depths)):
            return None
        matrix = self.result.element_matrix()
        return matrix[leaf_id, :int(depths[leaf_id])].tolist()

    def values_for_ids(self, ids: "np.ndarray"
                       ) -> Tuple["np.ndarray", "np.ndarray"]:
        """(values, known) arrays for a batch of leaf rows."""
        vec = self.values_vec
        if vec is None or len(vec) == 0:
            n = len(ids)
            return (np.full(n, self.unknown_user_value),
                    np.zeros(n, dtype=bool))
        known = (ids >= 0) & (ids < len(vec))
        values = np.where(known, vec[np.clip(ids, 0, len(vec) - 1)],
                          self.unknown_user_value)
        return values, known

    def vector_error_code(self, identity: str) -> str:
        """Why :meth:`vector` answered None: NOT_A_LEAF for resolvable
        internal nodes, UNKNOWN_USER otherwise."""
        if self.result is not None:
            path = self.identity_map.get(identity, identity)
            flat = self.result.flat
            if self.resolve_path(identity) or (
                    path in flat.path_index
                    and path not in flat.leaf_slot):
                return ERR_NOT_A_LEAF
        return ERR_UNKNOWN_USER

    def age(self, now: float) -> float:
        return max(0.0, now - self.computed_at)

    def staleness(self, now: float) -> Dict[str, float]:
        """Per-origin usage-horizon age: how far behind ``now`` each
        origin's incorporated usage is (zero-clamped)."""
        return {origin: max(0.0, now - horizon)
                for origin, horizon in self.horizons.items()}

    def describe(self) -> Dict[str, Any]:
        """JSON-ready summary (INFO replies, `repro probe`)."""
        return {
            "site": self.site,
            "seq": self.seq,
            "epoch": list(self.epoch) if isinstance(self.epoch, tuple)
            else self.epoch,
            "computed_at": self.computed_at,
            "projection": self.projection,
            "users": len(self.values),
            "origins": len(self.horizons),
        }


def snapshot_from_fcs(fcs: "FairshareCalculationService") -> FairshareSnapshot:
    """Build an immutable snapshot of the FCS's last refresh."""
    return FairshareSnapshot(
        site=fcs.site,
        seq=fcs.publishes,
        epoch=fcs.snapshot_epoch,
        computed_at=fcs.computed_at,
        projection=type(fcs.projection).__name__,
        resolution=fcs.parameters.resolution,
        unknown_user_value=fcs.unknown_user_value,
        values=fcs.values_view(),
        by_name=fcs.names_view(),
        identity_map=dict(fcs.identity_map),
        result=fcs.flat_result(),
        horizons=fcs.usage_horizons(),
        values_vec=fcs.values_array(),
        leaf_gen=fcs.leaf_generation,
    )


class SnapshotStore:
    """Single-writer, many-reader holder of the current snapshot.

    ``publish`` is called from the thread driving the FCS (the simulation
    or daemon tick thread); ``current`` from any number of server threads.
    The handoff is one attribute assignment — atomic under the GIL — so no
    reader ever blocks and no reader ever sees a half-published state.
    """

    def __init__(self) -> None:
        self._current: Optional[FairshareSnapshot] = None
        self._cond = threading.Condition()
        self.published = 0

    # -- writer side --------------------------------------------------------

    def publish(self, snapshot: FairshareSnapshot) -> None:
        self._current = snapshot
        with self._cond:
            self.published += 1
            self._cond.notify_all()

    def attach(self, fcs: "FairshareCalculationService") -> "SnapshotStore":
        """Publish on every FCS refresh (and once now, for the last one)."""
        fcs.add_refresh_listener(lambda f: self.publish(snapshot_from_fcs(f)))
        return self

    # -- reader side --------------------------------------------------------

    def current(self) -> Optional[FairshareSnapshot]:
        return self._current

    def age(self, now: float) -> Optional[float]:
        """Seconds since the current snapshot was computed (None if none).

        The single source of truth for snapshot age: INFO replies, the
        METRICS gauge, and ``aequus probe`` all derive from this.
        """
        snap = self._current
        return snap.age(now) if snap is not None else None

    def staleness(self, now: float,
                  refresh_interval: float) -> Optional[str]:
        """Coarse freshness verdict against the refresh cadence.

        ``"fresh"`` within one refresh interval, ``"stale"`` within three,
        ``"dead"`` beyond that (the refresh loop has almost certainly
        stopped); None before the first publication.
        """
        age = self.age(now)
        if age is None:
            return None
        if age <= refresh_interval:
            return "fresh"
        if age <= 3 * refresh_interval:
            return "stale"
        return "dead"

    def wait_for_seq(self, seq: int, timeout: Optional[float] = None) -> bool:
        """Block until a snapshot with ``seq >= seq`` is published."""
        with self._cond:
            return self._cond.wait_for(
                lambda: self._current is not None and self._current.seq >= seq,
                timeout)

    @classmethod
    def for_fcs(cls, fcs: "FairshareCalculationService") -> "SnapshotStore":
        return cls().attach(fcs)
