"""The aequusd backend: a site stack behind a thread-safe query surface.

The server's event loop runs in its own thread while the site's services
(FCS refreshes, USS exchanges) are driven elsewhere — the simulation loop
in tests and benchmarks, the real-time tick thread in the daemon.  The
backend is the seam that makes that safe:

* fairshare reads are served from the :class:`~repro.serve.snapshot.SnapshotStore`
  (immutable snapshots, lock-free);
* identity resolution goes through the IRS under a lock (the IRS memoizes
  endpoint answers into its table);
* usage reports are *enqueued* into the USS (atomic append) and folded in
  on the owning thread at the next exchange tick.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from ..core.usage import UsageRecord
from ..obs.registry import MetricsRegistry
from ..services.irs import IdentityResolutionError
from .snapshot import FairshareSnapshot, SnapshotStore

if TYPE_CHECKING:
    from ..core.vector import FairshareVector
    from ..services.fcs import FairshareCalculationService
    from ..services.irs import IdentityResolutionService
    from ..services.site import AequusSite
    from ..services.uss import UsageStatisticsService

__all__ = ["SiteBackend"]


class SiteBackend:
    """Query surface over one site's FCS/IRS/USS stack."""

    def __init__(self, site_name: str,
                 fcs: "FairshareCalculationService",
                 irs: Optional["IdentityResolutionService"] = None,
                 uss: Optional["UsageStatisticsService"] = None,
                 store: Optional[SnapshotStore] = None):
        self.site = site_name
        self.fcs = fcs
        self.irs = irs
        self.uss = uss
        self.store = store if store is not None else SnapshotStore.for_fcs(fcs)
        #: serializes IRS table mutation and lazy vector-matrix computation
        self._lock = threading.Lock()
        self.refresh_interval = fcs.refresh_interval
        self._clock = lambda: fcs.engine.now

    def now(self) -> float:
        """The stack's virtual clock (the engine driving the services)."""
        return self._clock()

    @property
    def registry(self) -> MetricsRegistry:
        """The service-side registry (the FCS's, shared site-wide when the
        stack was built through :class:`~repro.services.site.AequusSite`)."""
        return self.fcs.registry

    @classmethod
    def for_site(cls, site: "AequusSite") -> "SiteBackend":
        return cls(site.name, site.fcs, site.irs, site.uss)

    # -- snapshot reads (lock-free) -----------------------------------------

    def snapshot(self) -> Optional[FairshareSnapshot]:
        return self.store.current()

    def lookup_fairshare(self, identity: str,
                         snapshot: Optional[FairshareSnapshot] = None
                         ) -> Tuple[float, bool, Optional[FairshareSnapshot]]:
        snap = snapshot if snapshot is not None else self.store.current()
        if snap is None:
            return self.fcs.unknown_user_value, False, None
        value, known = snap.lookup(identity)
        return value, known, snap

    def vector(self, identity: str,
               snapshot: Optional[FairshareSnapshot] = None
               ) -> Optional["FairshareVector"]:
        snap = snapshot if snapshot is not None else self.store.current()
        if snap is None:
            return None
        # FlatFairshare lazily builds its element matrix on first vector
        # query; guard it so two server tasks cannot race the memoization
        with self._lock:
            return snap.vector(identity)

    # -- identity ------------------------------------------------------------

    def resolve_identity(self, system_user: str) -> Optional[str]:
        if self.irs is None:
            return None
        with self._lock:
            try:
                return self.irs.resolve(system_user)
            except IdentityResolutionError:
                return None

    # -- usage ingress --------------------------------------------------------

    def report_usage(self, user: str, start: float, end: float,
                     cores: int = 1) -> bool:
        if self.uss is None:
            return False
        record = UsageRecord(user=user, site=self.site, start=float(start),
                             end=float(end), cores=int(cores))
        self.uss.enqueue_record(record)
        return True

    # -- introspection --------------------------------------------------------

    def info(self) -> Dict[str, Any]:
        snap = self.store.current()
        now = self._clock()
        payload: Dict[str, Any] = {
            "site": self.site,
            "refresh_interval": self.refresh_interval,
            "time": now,
        }
        if snap is not None:
            payload["snapshot"] = snap.describe()
            # age and staleness from the store's single source of truth
            payload["snapshot_age"] = self.store.age(now)
            payload["staleness"] = self.store.staleness(
                now, self.refresh_interval)
            if snap.horizons:
                # per-origin freshness: the usage horizon the served values
                # incorporate, and how far behind "now" that is
                payload["usage_horizons"] = {
                    origin: {"horizon": horizon,
                             "staleness": max(0.0, now - horizon)}
                    for origin, horizon in sorted(snap.horizons.items())}
        if self.uss is not None:
            payload["usage_ingress"] = {
                "enqueued": self.uss.records_enqueued,
                "drained": self.uss.records_drained,
            }
        return payload
