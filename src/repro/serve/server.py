"""aequusd — the asyncio TCP server for the Aequus serve plane.

Concurrency model
-----------------
One event loop serves every connection.  Per connection a single buffered
loop reads socket chunks, parses every complete frame in the buffer —
JSON (length-prefixed) and binary (0xA3 magic) frames interleave freely,
discriminated on the first byte — executes each request inline (backend
reads are sub-microsecond snapshot lookups), and appends replies to an
output buffer that is flushed with one ``write`` + ``drain`` per burst.

Backpressure: the loop awaits ``drain()`` after every ``max_inflight``
executed requests and whenever the output buffer passes
``write_buffer_limit``.  When a client stops reading, ``drain()`` blocks,
the loop stops consuming bytes, and TCP backpressure bounds the client's
send side too — server memory per connection stays capped at roughly the
output buffer plus the socket buffers, no matter how fast the client
writes.

Request coalescing
------------------
Pipelined and batched JSON workloads repeat keys (many jobs per user
submitted together).  Identical single-key reads against the *same
snapshot* produce identical reply bodies, so the server memoizes bodies
keyed by ``(op, user, snapshot seq)`` in a small bounded map and only
recomputes on a snapshot change.  Coalesced hits are counted in the
stats.  The binary protocol needs no server-side coalescing: clients
cache integer leaf ids, which makes every repeat lookup two array reads.

Batches resolve the current snapshot ONCE and serve every sub-request
from it, so a batch can never straddle an FCS refresh (no torn batches).
"""

from __future__ import annotations

import asyncio
import os
import socket
import struct
import threading
import time
from bisect import bisect_left
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional

import numpy as np

from ..obs import trace
from ..obs.export import render_many
from ..obs.registry import MetricsRegistry, StatsView
from .backend import SiteBackend
from .protocol import (BF_BY_ID, BIN_ACCEPTED, BIN_BATCH_HEAD,
                       BIN_BATCH_REPLY_HEAD, BIN_BY_ID, BIN_FS_FULL,
                       BIN_HEADER, BIN_PROTOCOL_VERSION, BIN_REP_MAGIC,
                       BIN_REPORT, BIN_REQ_MAGIC, BIN_VEC_HEAD,
                       BOP_BATCH_FAIRSHARE, BOP_GET_FAIRSHARE,
                       BOP_GET_VECTOR, BOP_PING, BOP_REPORT_USAGE,
                       BST_BAD_BATCH, BST_EPOCH_CHANGED, BST_MALFORMED,
                       BST_NOT_A_LEAF, BST_OK, BST_OVERSIZED, BST_UNKNOWN_USER,
                       BST_UNSUPPORTED_OP, ERR_BAD_BATCH, ERR_BAD_VERSION,
                       ERR_INTERNAL, ERR_MALFORMED, ERR_NOT_A_LEAF,
                       ERR_OVERSIZED, ERR_UNKNOWN_USER, ERR_UNSUPPORTED_OP,
                       HEADER, MAX_FRAME_BYTES, NO_LEAF_ID, OPS,
                       PROTOCOL_VERSION, MalformedFrame, bin_error,
                       decode_payload, encode_frame, error_reply, ok_reply)
from .snapshot import FairshareSnapshot

__all__ = ["AequusServer", "ServerThread"]

#: binary opcode -> the op label used for latency histograms and errors
_BIN_OP_NAMES = {
    BOP_GET_FAIRSHARE: "GET_FAIRSHARE",
    BOP_GET_VECTOR: "GET_VECTOR",
    BOP_REPORT_USAGE: "REPORT_USAGE",
    BOP_BATCH_FAIRSHARE: "BATCH",
    BOP_PING: "PING",
}

_READ_CHUNK = 256 * 1024


class AequusServer:
    """Dual-protocol (JSON v1 + binary v2) TCP front end for a backend."""

    def __init__(self, backend: SiteBackend,
                 host: str = "127.0.0.1", port: int = 0,
                 max_frame: int = MAX_FRAME_BYTES,
                 max_inflight: int = 128,
                 max_batch: int = 4096,
                 coalesce_size: int = 4096,
                 write_buffer_limit: int = 256 * 1024,
                 registry: Optional[MetricsRegistry] = None,
                 binary: bool = True,
                 identity: Optional[Dict[str, Any]] = None,
                 stats_aggregator: Optional[Callable[[], Dict[str, int]]]
                 = None,
                 extra_metrics: Optional[Callable[[], str]] = None,
                 trace_export: Optional[Callable[[], Dict[str, Any]]] = None,
                 sock: Optional[socket.socket] = None):
        self.backend = backend
        self.host = host
        self.port = port
        self.max_frame = max_frame
        self.max_inflight = max_inflight
        self.max_batch = max_batch
        self.write_buffer_limit = write_buffer_limit
        #: serve the struct-packed v2 protocol (negotiated via HELLO); off,
        #: the server behaves exactly like a JSON-only v1 daemon
        self.binary = binary
        #: worker identity advertised in HELLO and INFO (pid is implied)
        self.identity = dict(identity or {})
        #: cross-worker stats for INFO (a sharded worker aggregates its
        #: siblings' shared-memory rows here); None means local stats
        self.stats_aggregator = stats_aggregator
        #: extra Prometheus exposition text appended to METRICS scrapes
        #: (per-worker aggregation lines in sharded mode)
        self.extra_metrics = extra_metrics
        #: TRACE_EXPORT hook: returns the reply body (events + clock
        #: metadata).  The daemon installs one carrying its virtual-epoch
        #: alignment; workers install a spool drain so any worker can
        #: answer for the parent exactly once.  ``None`` drains the
        #: process-default tracer.
        self.trace_export = trace_export
        self._sock = sock
        self._server: Optional[asyncio.AbstractServer] = None
        #: (op, user, snapshot seq) -> reply body, LRU-bounded
        self._coalesce: "OrderedDict[tuple, Dict[str, Any]]" = OrderedDict()
        self._coalesce_size = coalesce_size
        #: server-side registry (wall-clock); pass the site's shared one to
        #: fold request metrics into the same METRICS scrape
        self.registry = registry if registry is not None else MetricsRegistry(
            constant_labels={"site": backend.site, "component": "server"})
        bad_frames = self.registry.counter(
            "aequus_bad_frames_total",
            "Frames rejected before execution, by failure kind", ("kind",))
        self._metrics = {
            "connections": self.registry.counter(
                "aequus_connections_total",
                "Connections accepted over the server's lifetime").labels(),
            "connections_active": self.registry.gauge(
                "aequus_connections_active",
                "Connections currently open").labels(),
            "requests": self.registry.counter(
                "aequus_requests_total",
                "Requests executed (any op, batches count once)").labels(),
            "binary_requests": self.registry.counter(
                "aequus_binary_requests_total",
                "Requests that arrived as binary (v2) frames").labels(),
            "batches": self.registry.counter(
                "aequus_batches_total", "BATCH requests executed").labels(),
            "batch_items": self.registry.counter(
                "aequus_batch_items_total",
                "Sub-requests carried inside batches").labels(),
            "coalesced": self.registry.counter(
                "aequus_coalesced_total",
                "Key-addressed reads served from the per-snapshot "
                "coalescing map").labels(),
            "errors": self.registry.counter(
                "aequus_errors_total",
                "Requests answered with an error reply").labels(),
            "oversized_frames": bad_frames.labels(kind="oversized"),
            "malformed_frames": bad_frames.labels(kind="malformed"),
        }
        self.stats = StatsView(self._metrics)
        latency = self.registry.histogram(
            "aequus_request_seconds",
            "Server-side request execution time by op (METRICS itself is "
            "excluded so a scrape never perturbs what it reports)", ("op",))
        self._op_latency = {op: latency.labels(op=op) for op in OPS}

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        if self._sock is not None:
            self._server = await asyncio.start_server(
                self._serve_connection, sock=self._sock)
        else:
            self._server = await asyncio.start_server(
                self._serve_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def close(self) -> None:
        """Stop accepting connections (sync; used during loop teardown)."""
        if self._server is not None:
            self._server.close()
            self._server = None

    # -- the per-connection loop ----------------------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        self._metrics["connections"].inc()
        self._metrics["connections_active"].inc()
        try:
            await self._connection_loop(reader, writer)
        finally:
            # the one decrement, on the outermost exit: no disconnect path
            # (read error, drain death, cancellation mid-teardown) can leak
            # the gauge or drive it negative
            self._metrics["connections_active"].dec()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _connection_loop(self, reader: asyncio.StreamReader,
                               writer: asyncio.StreamWriter) -> None:
        writer.transport.set_write_buffer_limits(high=self.write_buffer_limit)
        buf = bytearray()
        out = bytearray()
        binary = self.binary
        max_frame = self.max_frame
        unpack_bin = BIN_HEADER.unpack_from
        unpack_len = HEADER.unpack_from
        since_flush = 0
        closing = False
        while not closing:
            try:
                chunk = await reader.read(_READ_CHUNK)
            except (ConnectionResetError, OSError):
                return
            if not chunk:
                return
            buf += chunk
            pos = 0
            end = len(buf)
            while pos < end:
                first = buf[pos]
                if binary and first == BIN_REQ_MAGIC:
                    if end - pos < BIN_HEADER.size:
                        break
                    _, opcode, flags, rid, body_len = unpack_bin(buf, pos)
                    if body_len > max_frame:
                        self.stats["oversized_frames"] += 1
                        self.stats["errors"] += 1
                        out += bin_error(BST_OVERSIZED, rid,
                                         f"body of {body_len} bytes exceeds "
                                         f"cap {max_frame}")
                        closing = True
                        break
                    if end - pos < BIN_HEADER.size + body_len:
                        break
                    body_at = pos + BIN_HEADER.size
                    body = bytes(buf[body_at:body_at + body_len])
                    pos = body_at + body_len
                    self._execute_bin(opcode, flags, rid, body, out)
                else:
                    if end - pos < HEADER.size:
                        break
                    (length,) = unpack_len(buf, pos)
                    if length > max_frame:
                        # the stream is no longer aligned to frame
                        # boundaries: reply and close (the payload bytes,
                        # if they ever come, are never buffered)
                        self.stats["oversized_frames"] += 1
                        self.stats["errors"] += 1
                        out += encode_frame(error_reply(
                            None, ERR_OVERSIZED,
                            f"frame of {length} bytes exceeds cap "
                            f"{max_frame}"))
                        closing = True
                        break
                    if end - pos < HEADER.size + length:
                        break
                    body_at = pos + HEADER.size
                    body = bytes(buf[body_at:body_at + length])
                    pos = body_at + length
                    try:
                        request = decode_payload(body)
                    except MalformedFrame as exc:
                        # framing was intact (declared length matched),
                        # only the payload was garbage — the connection
                        # stays usable
                        self.stats["malformed_frames"] += 1
                        self.stats["errors"] += 1
                        out += encode_frame(error_reply(
                            None, ERR_MALFORMED, str(exc)))
                    else:
                        out += encode_frame(self._execute(request))
                since_flush += 1
                if since_flush >= self.max_inflight \
                        or len(out) >= self.write_buffer_limit:
                    since_flush = 0
                    if out:
                        writer.write(bytes(out))
                        out.clear()
                    try:
                        await writer.drain()
                    except (ConnectionError, OSError):
                        return
            del buf[:pos]
            if out:
                writer.write(bytes(out))
                out.clear()
                since_flush = 0
                try:
                    await writer.drain()
                except (ConnectionError, OSError):
                    return

    # -- binary (v2) execution -------------------------------------------------

    def _execute_bin(self, opcode: int, flags: int, rid: int, body: bytes,
                     out: bytearray) -> None:
        self._metrics["requests"].inc()
        self._metrics["binary_requests"].inc()
        timed = self.registry.enabled
        t0 = time.perf_counter() if timed else 0.0
        try:
            if opcode == BOP_GET_FAIRSHARE:
                self._bin_get_fairshare(flags, rid, body, out)
            elif opcode == BOP_GET_VECTOR:
                self._bin_get_vector(flags, rid, body, out)
            elif opcode == BOP_BATCH_FAIRSHARE:
                self._bin_batch(flags, rid, body, out)
            elif opcode == BOP_REPORT_USAGE:
                self._bin_report_usage(rid, body, out)
            elif opcode == BOP_PING:
                out += BIN_HEADER.pack(BIN_REP_MAGIC, BST_OK, 0, rid,
                                       len(body)) + body
            else:
                self.stats["errors"] += 1
                out += bin_error(BST_UNSUPPORTED_OP, rid,
                                 f"unknown opcode {opcode}")
        except Exception as exc:  # defensive: a bug must not kill the loop
            self.stats["errors"] += 1
            from .protocol import BST_INTERNAL
            out += bin_error(BST_INTERNAL, rid,
                             f"{type(exc).__name__}: {exc}")
        if timed:
            # inline observe, same fast path as the JSON side
            hist = self._op_latency[_BIN_OP_NAMES.get(opcode, "PING")]
            elapsed = time.perf_counter() - t0
            hist.counts[bisect_left(hist.buckets, elapsed)] += 1
            hist.sum += elapsed
            hist.count += 1

    def _stable_snapshot(self):
        """(snapshot, stamp) with the seqlock sampled for shm views."""
        snap = self.backend.snapshot()
        if snap is None:
            return None, 0
        stamp = snap.stamp()
        if stamp is None:  # republish in flight: refetch
            for _ in range(64):
                snap = self.backend.snapshot()
                stamp = snap.stamp() if snap is not None else 0
                if stamp is not None:
                    break
        return snap, stamp

    def _bin_get_fairshare(self, flags: int, rid: int, body: bytes,
                           out: bytearray) -> None:
        for _ in range(64):
            snap, stamp = self._stable_snapshot()
            if snap is None:
                self.stats["errors"] += 1
                out += bin_error(BST_UNKNOWN_USER, rid, "no snapshot yet")
                return
            gen = snap.leaf_gen
            if flags & BF_BY_ID:
                if len(body) != BIN_BY_ID.size:
                    self.stats["errors"] += 1
                    out += bin_error(BST_MALFORMED, rid,
                                     "BY_ID body must be gen u32 + id u32")
                    return
                req_gen, leaf_id = BIN_BY_ID.unpack(body)
                if req_gen != gen:
                    self.stats["errors"] += 1
                    out += bin_error(BST_EPOCH_CHANGED, rid,
                                     f"leaf table is generation {gen}, "
                                     f"id was minted under {req_gen}")
                    return
                value = snap.lookup_id(leaf_id)
                if value is None:
                    self.stats["errors"] += 1
                    out += bin_error(BST_UNKNOWN_USER, rid,
                                     f"leaf id {leaf_id} out of range")
                    return
                known = 1
            else:
                try:
                    user = body.decode("utf-8")
                except UnicodeDecodeError:
                    self.stats["errors"] += 1
                    out += bin_error(BST_MALFORMED, rid,
                                     "identity is not valid UTF-8")
                    return
                value, is_known, leaf_id = snap.resolve_leaf(user)
                known = 1 if is_known else 0
            if snap.still(stamp):
                out += BIN_FS_FULL.pack(
                    BIN_REP_MAGIC, BST_OK, 0, rid, 24,
                    value, known, snap.seq & 0xFFFFFFFF, gen, leaf_id)
                return
        raise RuntimeError("snapshot would not stabilize")

    def _bin_get_vector(self, flags: int, rid: int, body: bytes,
                        out: bytearray) -> None:
        for _ in range(64):
            snap, stamp = self._stable_snapshot()
            if snap is None:
                self.stats["errors"] += 1
                out += bin_error(BST_UNKNOWN_USER, rid, "no snapshot yet")
                return
            if flags & BF_BY_ID:
                if len(body) != BIN_BY_ID.size:
                    self.stats["errors"] += 1
                    out += bin_error(BST_MALFORMED, rid,
                                     "BY_ID body must be gen u32 + id u32")
                    return
                req_gen, leaf_id = BIN_BY_ID.unpack(body)
                if req_gen != snap.leaf_gen:
                    self.stats["errors"] += 1
                    out += bin_error(BST_EPOCH_CHANGED, rid,
                                     "leaf id from an old generation")
                    return
                elems = snap.vector_elements(leaf_id)
                resolution = snap.resolution
            else:
                try:
                    user = body.decode("utf-8")
                except UnicodeDecodeError:
                    self.stats["errors"] += 1
                    out += bin_error(BST_MALFORMED, rid,
                                     "identity is not valid UTF-8")
                    return
                vector = self.backend.vector(user, snap)
                elems = list(vector.elements) if vector is not None else None
                resolution = vector.resolution if vector is not None \
                    else snap.resolution
                if elems is None:
                    self.stats["errors"] += 1
                    code = snap.vector_error_code(user)
                    out += bin_error(
                        BST_NOT_A_LEAF if code == ERR_NOT_A_LEAF
                        else BST_UNKNOWN_USER, rid,
                        f"{user!r} has no leaf vector")
                    return
            if elems is None:
                self.stats["errors"] += 1
                out += bin_error(BST_UNKNOWN_USER, rid, "no vector")
                return
            if snap.still(stamp):
                n = len(elems)
                out += BIN_HEADER.pack(BIN_REP_MAGIC, BST_OK, 0, rid,
                                       BIN_VEC_HEAD.size + 8 * n)
                out += BIN_VEC_HEAD.pack(snap.seq & 0xFFFFFFFF,
                                         resolution, n)
                out += struct.pack(">%dd" % n, *elems)
                return
        raise RuntimeError("snapshot would not stabilize")

    def _bin_batch(self, flags: int, rid: int, body: bytes,
                   out: bytearray) -> None:
        if not flags & BF_BY_ID:
            self.stats["errors"] += 1
            out += bin_error(BST_BAD_BATCH, rid,
                             "binary batches are id-addressed (BF_BY_ID)")
            return
        if len(body) < BIN_BATCH_HEAD.size:
            self.stats["errors"] += 1
            out += bin_error(BST_MALFORMED, rid, "truncated batch head")
            return
        req_gen, count = BIN_BATCH_HEAD.unpack_from(body)
        if count > self.max_batch:
            self.stats["errors"] += 1
            out += bin_error(BST_BAD_BATCH, rid,
                             f"batch of {count} exceeds cap "
                             f"{self.max_batch}")
            return
        if len(body) != BIN_BATCH_HEAD.size + 4 * count:
            self.stats["errors"] += 1
            out += bin_error(BST_MALFORMED, rid,
                             "batch body length mismatch")
            return
        ids = np.frombuffer(body, dtype=">u4", count=count,
                            offset=BIN_BATCH_HEAD.size).astype(np.int64)
        for _ in range(64):
            # one snapshot for the whole batch: items can never straddle
            # a refresh
            snap, stamp = self._stable_snapshot()
            if snap is None:
                self.stats["errors"] += 1
                out += bin_error(BST_UNKNOWN_USER, rid, "no snapshot yet")
                return
            if req_gen != snap.leaf_gen:
                self.stats["errors"] += 1
                out += bin_error(BST_EPOCH_CHANGED, rid,
                                 "leaf ids from an old generation")
                return
            values, known = snap.values_for_ids(ids)
            if snap.still(stamp):
                self.stats["batches"] += 1
                self.stats["batch_items"] += count
                payload_len = BIN_BATCH_REPLY_HEAD.size + 9 * count
                out += BIN_HEADER.pack(BIN_REP_MAGIC, BST_OK, 0, rid,
                                       payload_len)
                out += BIN_BATCH_REPLY_HEAD.pack(snap.seq & 0xFFFFFFFF,
                                                 snap.leaf_gen, count)
                out += values.astype(">f8").tobytes()
                out += known.astype(np.uint8).tobytes()
                return
        raise RuntimeError("snapshot would not stabilize")

    def _bin_report_usage(self, rid: int, body: bytes,
                          out: bytearray) -> None:
        if len(body) <= BIN_REPORT.size:
            self.stats["errors"] += 1
            out += bin_error(BST_MALFORMED, rid,
                             "REPORT_USAGE body is start f64 + end f64 + "
                             "cores u32 + user utf-8")
            return
        start, end, cores = BIN_REPORT.unpack_from(body)
        try:
            user = body[BIN_REPORT.size:].decode("utf-8")
        except UnicodeDecodeError:
            self.stats["errors"] += 1
            out += bin_error(BST_MALFORMED, rid, "user is not valid UTF-8")
            return
        if not user or end < start or cores < 1:
            self.stats["errors"] += 1
            out += bin_error(BST_MALFORMED, rid,
                             "end >= start and cores >= 1 required")
            return
        accepted = self.backend.report_usage(user, start, end, cores)
        out += BIN_HEADER.pack(BIN_REP_MAGIC, BST_OK, 0, rid, 1)
        out += BIN_ACCEPTED.pack(1 if accepted else 0)

    # -- JSON (v1) execution ---------------------------------------------------

    def _execute(self, request: Dict[str, Any]) -> Dict[str, Any]:
        rid = request.get("id")
        if not isinstance(rid, (int, type(None))):
            rid = None
        version = request.get("v", PROTOCOL_VERSION)
        if version != PROTOCOL_VERSION:
            self.stats["errors"] += 1
            return error_reply(rid, ERR_BAD_VERSION,
                               f"server speaks protocol {PROTOCOL_VERSION}, "
                               f"request used {version!r}")
        op = request.get("op")
        if op not in OPS:
            self.stats["errors"] += 1
            return error_reply(rid, ERR_UNSUPPORTED_OP, f"unknown op {op!r}")
        if op != "HELLO":
            # HELLO is connection negotiation, not a serving request — it
            # would skew request counters by one per pooled connection
            self._metrics["requests"].inc()
        # a METRICS scrape is never timed: observing its own latency would
        # mutate the histogram after rendering, breaking the guarantee that
        # the reply matches a direct render of the same registries
        timed = self.registry.enabled and op != "METRICS"
        t0 = time.perf_counter() if timed else 0.0
        try:
            if op == "BATCH":
                reply = self._execute_batch(rid, request)
            else:
                body = self._execute_single(op, request,
                                            self.backend.snapshot())
                if not body.get("ok", False):
                    self.stats["errors"] += 1
                reply = dict(body, id=rid)
        except Exception as exc:  # defensive: a bug must not kill the loop
            self.stats["errors"] += 1
            reply = error_reply(rid, ERR_INTERNAL,
                                f"{type(exc).__name__}: {exc}")
        if timed:
            # inline observe: op-latency children are written only from
            # this (the event-loop) thread, so the per-request fast path
            # skips the registry lock and the method dispatch — this is
            # the hottest instrument in the stack
            hist = self._op_latency[op]
            elapsed = time.perf_counter() - t0
            hist.counts[bisect_left(hist.buckets, elapsed)] += 1
            hist.sum += elapsed
            hist.count += 1
        return reply

    def _execute_batch(self, rid: Optional[int],
                       request: Dict[str, Any]) -> Dict[str, Any]:
        subs = request.get("requests")
        if not isinstance(subs, list):
            return error_reply(rid, ERR_BAD_BATCH,
                               "BATCH needs a 'requests' list")
        if len(subs) > self.max_batch:
            return error_reply(rid, ERR_BAD_BATCH,
                               f"batch of {len(subs)} exceeds cap "
                               f"{self.max_batch}")
        # one snapshot for the whole batch: items can never straddle a refresh
        snapshot = self.backend.snapshot()
        self.stats["batches"] += 1
        self.stats["batch_items"] += len(subs)
        replies = []
        for sub in subs:
            if not isinstance(sub, dict):
                replies.append(error_reply(None, ERR_BAD_BATCH,
                                           "batch item is not an object"))
                continue
            sub_op = sub.get("op")
            if sub_op == "BATCH":
                replies.append(error_reply(sub.get("id"), ERR_BAD_BATCH,
                                           "batches do not nest"))
                continue
            if sub_op not in OPS:
                replies.append(error_reply(sub.get("id"), ERR_UNSUPPORTED_OP,
                                           f"unknown op {sub_op!r}"))
                continue
            body = self._execute_single(sub_op, sub, snapshot)
            # only copy when the item carried an id: batch items usually
            # correlate by position, and coalesced bodies serialize as-is
            sub_id = sub.get("id")
            replies.append(dict(body, id=sub_id) if sub_id is not None
                           else body)
        return ok_reply(rid, replies=replies)

    def _server_identity(self) -> Dict[str, Any]:
        ident: Dict[str, Any] = {
            "pid": os.getpid(),
            "protocol": PROTOCOL_VERSION,
            "binary": BIN_PROTOCOL_VERSION if self.binary else 0,
        }
        ident.update(self.identity)
        return ident

    def _execute_single(self, op: str, request: Dict[str, Any],
                        snapshot: Optional[FairshareSnapshot]
                        ) -> Dict[str, Any]:
        """Reply *body* (no id) for one non-batch op."""
        if op == "PING":
            body: Dict[str, Any] = {"ok": True, "pong": True}
            if "payload" in request:
                body["payload"] = request["payload"]
            return body
        if op == "HELLO":
            # capability discovery: a binary-capable client upgrades only
            # after this answers with a non-zero "binary" (servers predating
            # the op answer UNSUPPORTED_OP, which clients treat as JSON-only)
            return {"ok": True, "protocol": PROTOCOL_VERSION,
                    "binary": BIN_PROTOCOL_VERSION if self.binary else 0,
                    "server": self._server_identity()}
        if op == "INFO":
            stats = self.stats_aggregator() if self.stats_aggregator \
                is not None else dict(self.stats)
            return {"ok": True, "protocol": PROTOCOL_VERSION,
                    "server": self._server_identity(),
                    "info": self.backend.info(), "stats": stats}
        if op == "METRICS":
            # requests_total was already incremented for this request, so
            # the scrape observes itself exactly once — and byte-for-byte
            # matches a direct render of the same registries afterwards
            text = render_many([self.registry, self.backend.registry])
            if self.extra_metrics is not None:
                text += self.extra_metrics()
            return {"ok": True,
                    "content_type": "text/plain; version=0.0.4",
                    "text": text}
        if op == "TRACE_EXPORT":
            if self.trace_export is not None:
                body = dict(self.trace_export())
            else:
                tracer = trace.default_tracer()
                body = {"events": tracer.drain(),
                        "dropped": tracer.dropped}
            body.setdefault("ok", True)
            body.setdefault("pid", os.getpid())
            body.setdefault("site", self.backend.site)
            return body
        if op == "REPORT_USAGE":
            return self._report_usage(request)
        # key-addressed reads: coalesce identical keys per snapshot
        user = request.get("user")
        if not isinstance(user, str) or not user:
            return {"ok": False,
                    "error": {"code": ERR_MALFORMED,
                              "message": f"{op} needs a 'user' string"}}
        if op == "GET_FAIRSHARE" and request.get("horizons"):
            # freshness-annotated reads bypass the coalescing map: its key
            # is (op, user, seq), which cannot distinguish the flag, and
            # the staleness values depend on "now", not on the snapshot
            return self._get_fairshare(user, snapshot, with_horizons=True)
        seq = snapshot.seq if snapshot is not None else -1
        key = (op, user, seq)
        cached = self._coalesce.get(key)
        if cached is not None:
            self.stats["coalesced"] += 1
            return cached
        if op == "GET_FAIRSHARE":
            body = self._get_fairshare(user, snapshot)
        elif op == "GET_VECTOR":
            body = self._get_vector(user, snapshot)
        else:  # RESOLVE_IDENTITY
            body = self._resolve_identity(user)
            if not body["ok"]:
                # an IRS mapping may be stored at any moment; a memoized
                # negative answer would outlive it within this snapshot
                return body
        if len(self._coalesce) >= self._coalesce_size:
            self._coalesce.popitem(last=False)
        self._coalesce[key] = body
        return body

    # -- op implementations ----------------------------------------------------

    def _get_fairshare(self, user: str,
                       snapshot: Optional[FairshareSnapshot],
                       with_horizons: bool = False) -> Dict[str, Any]:
        value, known, snap = self.backend.lookup_fairshare(user, snapshot)
        body: Dict[str, Any] = {"ok": True, "value": value, "known": known}
        if snap is not None:
            body["seq"] = snap.seq
            body["epoch"] = list(snap.epoch) if isinstance(snap.epoch, tuple) \
                else snap.epoch
            if with_horizons:
                body["horizons"] = dict(snap.horizons)
                body["staleness"] = snap.staleness(self.backend.now())
        return body

    def _get_vector(self, user: str,
                    snapshot: Optional[FairshareSnapshot]) -> Dict[str, Any]:
        vector = self.backend.vector(user, snapshot)
        if vector is None:
            code = ERR_UNKNOWN_USER
            if snapshot is not None:
                code = snapshot.vector_error_code(user)
            return {"ok": False,
                    "error": {"code": code,
                              "message": f"no vector for {user!r}"}}
        return {"ok": True, "elements": list(vector.elements),
                "resolution": vector.resolution,
                "seq": snapshot.seq if snapshot is not None else -1}

    def _resolve_identity(self, user: str) -> Dict[str, Any]:
        identity = self.backend.resolve_identity(user)
        if identity is None:
            return {"ok": False,
                    "error": {"code": ERR_UNKNOWN_USER,
                              "message": f"cannot resolve {user!r}"}}
        return {"ok": True, "identity": identity}

    def _report_usage(self, request: Dict[str, Any]) -> Dict[str, Any]:
        user = request.get("user")
        start = request.get("start")
        end = request.get("end")
        cores = request.get("cores", 1)
        if not isinstance(user, str) or not user \
                or not isinstance(start, (int, float)) \
                or not isinstance(end, (int, float)) \
                or not isinstance(cores, int) or cores < 1 or end < start:
            return {"ok": False,
                    "error": {"code": ERR_MALFORMED,
                              "message": "REPORT_USAGE needs user/start/end"
                                         " (end >= start, cores >= 1)"}}
        accepted = self.backend.report_usage(user, start, end, cores)
        return {"ok": True, "accepted": accepted}


class ServerThread:
    """Run an :class:`AequusServer` on a private event loop thread.

    Tests, benchmarks and the daemon embed the server next to code driving
    the simulation engine; this wrapper owns the loop, starts the server
    (resolving port 0 to the real ephemeral port before returning), and
    tears both down on :meth:`stop`.
    """

    def __init__(self, server: AequusServer):
        self.server = server
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def host(self) -> str:
        return self.server.host

    def start(self, timeout: float = 10.0) -> "ServerThread":
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run, name="aequusd",
                                        daemon=True)
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("aequusd server thread failed to start")
        if self._startup_error is not None:
            raise RuntimeError("aequusd failed to bind") \
                from self._startup_error
        return self

    @staticmethod
    def _quiet_cancelled(loop: asyncio.AbstractEventLoop,
                         context: Dict[str, Any]) -> None:
        # cancelling connection handlers at teardown makes asyncio streams
        # report a spurious "Exception in callback ... CancelledError"
        if isinstance(context.get("exception"), asyncio.CancelledError):
            return
        loop.default_exception_handler(context)

    def _run(self) -> None:
        assert self.loop is not None
        asyncio.set_event_loop(self.loop)
        self.loop.set_exception_handler(self._quiet_cancelled)
        try:
            self.loop.run_until_complete(self.server.start())
        except BaseException as exc:  # bind failure etc.
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        try:
            self.loop.run_forever()
        finally:
            self.server.close()
            tasks = [t for t in asyncio.all_tasks(self.loop) if not t.done()]
            for task in tasks:
                task.cancel()
            if tasks:
                self.loop.run_until_complete(
                    asyncio.gather(*tasks, return_exceptions=True))
            self.loop.run_until_complete(self.loop.shutdown_asyncgens())
            self.loop.close()

    def stop(self, timeout: float = 10.0) -> None:
        if self.loop is None or self._thread is None:
            return
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout)
        self._thread = None
        self.loop = None
