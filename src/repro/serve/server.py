"""aequusd — the asyncio TCP server for the Aequus serve plane.

Concurrency model
-----------------
One event loop serves every connection.  Per connection, a *reader* loop
parses frames and executes requests (backend reads are sub-microsecond
snapshot lookups, so execution is synchronous), and a *writer* task drains
an ordered reply queue to the socket.  The queue is bounded by
``max_inflight``: when a client stops reading, ``drain()`` blocks the
writer, the queue fills, the reader stalls on ``put`` and stops consuming
bytes — TCP backpressure then bounds the client's send side too.  Server
memory per connection is therefore capped at roughly ``max_inflight``
replies plus the socket buffers, no matter how fast the client writes.

Request coalescing
------------------
Pipelined and batched workloads repeat keys (many jobs per user submitted
together).  Identical single-key reads against the *same snapshot* produce
identical reply bodies, so the server memoizes bodies keyed by
``(op, user, snapshot seq)`` in a small bounded map and only recomputes on
a snapshot change.  Coalesced hits are counted in the stats.

Batches resolve the current snapshot ONCE and serve every sub-request from
it, so a batch can never straddle an FCS refresh (no torn batches).
"""

from __future__ import annotations

import asyncio
import threading
import time
from bisect import bisect_left
from collections import OrderedDict
from typing import Any, Dict, Optional

from ..obs.export import render_many
from ..obs.registry import MetricsRegistry, StatsView
from .backend import SiteBackend
from .protocol import (ERR_BAD_BATCH, ERR_BAD_VERSION, ERR_INTERNAL,
                       ERR_MALFORMED, ERR_NOT_A_LEAF, ERR_OVERSIZED,
                       ERR_UNKNOWN_USER, ERR_UNSUPPORTED_OP, MAX_FRAME_BYTES,
                       OPS, PROTOCOL_VERSION, ConnectionClosed, FrameTooLarge,
                       MalformedFrame, encode_frame, error_reply, ok_reply,
                       read_frame)
from .snapshot import FairshareSnapshot

__all__ = ["AequusServer", "ServerThread"]

#: sentinel closing a connection's reply queue
_CLOSE = object()


class AequusServer:
    """Versioned JSON-over-TCP front end for a :class:`SiteBackend`."""

    def __init__(self, backend: SiteBackend,
                 host: str = "127.0.0.1", port: int = 0,
                 max_frame: int = MAX_FRAME_BYTES,
                 max_inflight: int = 128,
                 max_batch: int = 4096,
                 coalesce_size: int = 4096,
                 write_buffer_limit: int = 256 * 1024,
                 registry: Optional[MetricsRegistry] = None):
        self.backend = backend
        self.host = host
        self.port = port
        self.max_frame = max_frame
        self.max_inflight = max_inflight
        self.max_batch = max_batch
        self.write_buffer_limit = write_buffer_limit
        self._server: Optional[asyncio.AbstractServer] = None
        #: (op, user, snapshot seq) -> reply body, LRU-bounded
        self._coalesce: "OrderedDict[tuple, Dict[str, Any]]" = OrderedDict()
        self._coalesce_size = coalesce_size
        #: server-side registry (wall-clock); pass the site's shared one to
        #: fold request metrics into the same METRICS scrape
        self.registry = registry if registry is not None else MetricsRegistry(
            constant_labels={"site": backend.site, "component": "server"})
        bad_frames = self.registry.counter(
            "aequus_bad_frames_total",
            "Frames rejected before execution, by failure kind", ("kind",))
        self._metrics = {
            "connections": self.registry.counter(
                "aequus_connections_total",
                "Connections accepted over the server's lifetime").labels(),
            "connections_active": self.registry.gauge(
                "aequus_connections_active",
                "Connections currently open").labels(),
            "requests": self.registry.counter(
                "aequus_requests_total",
                "Requests executed (any op, batches count once)").labels(),
            "batches": self.registry.counter(
                "aequus_batches_total", "BATCH requests executed").labels(),
            "batch_items": self.registry.counter(
                "aequus_batch_items_total",
                "Sub-requests carried inside batches").labels(),
            "coalesced": self.registry.counter(
                "aequus_coalesced_total",
                "Key-addressed reads served from the per-snapshot "
                "coalescing map").labels(),
            "errors": self.registry.counter(
                "aequus_errors_total",
                "Requests answered with an error reply").labels(),
            "oversized_frames": bad_frames.labels(kind="oversized"),
            "malformed_frames": bad_frames.labels(kind="malformed"),
        }
        self.stats = StatsView(self._metrics)
        latency = self.registry.histogram(
            "aequus_request_seconds",
            "Server-side request execution time by op (METRICS itself is "
            "excluded so a scrape never perturbs what it reports)", ("op",))
        self._op_latency = {op: latency.labels(op=op) for op in OPS}

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def close(self) -> None:
        """Stop accepting connections (sync; used during loop teardown)."""
        if self._server is not None:
            self._server.close()
            self._server = None

    # -- per-connection loops -------------------------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        self._metrics["connections"].inc()
        self._metrics["connections_active"].inc()
        try:
            await self._connection_loop(reader, writer)
        finally:
            # the one decrement, on the outermost exit: no disconnect path
            # (reader exception, writer death, cancellation mid-teardown)
            # can leak the gauge or drive it negative
            self._metrics["connections_active"].dec()

    async def _connection_loop(self, reader: asyncio.StreamReader,
                               writer: asyncio.StreamWriter) -> None:
        writer.transport.set_write_buffer_limits(high=self.write_buffer_limit)
        replies: asyncio.Queue = asyncio.Queue(maxsize=self.max_inflight)
        writer_task = asyncio.ensure_future(self._writer_loop(replies, writer))
        try:
            while True:
                try:
                    request = await read_frame(reader, self.max_frame)
                except ConnectionClosed:
                    break
                except FrameTooLarge as exc:
                    # the oversized payload was never read; the stream is no
                    # longer aligned to frame boundaries, so reply and close
                    self.stats["oversized_frames"] += 1
                    self.stats["errors"] += 1
                    await replies.put(error_reply(None, ERR_OVERSIZED,
                                                  str(exc)))
                    break
                except MalformedFrame as exc:
                    # framing was intact (declared length matched), only the
                    # payload was garbage — the connection stays usable
                    self.stats["malformed_frames"] += 1
                    self.stats["errors"] += 1
                    await replies.put(error_reply(None, ERR_MALFORMED,
                                                  str(exc)))
                    continue
                await replies.put(self._execute(request))
        finally:
            try:
                await replies.put(_CLOSE)
                await writer_task
            finally:
                # cancellation during the puts above must not strand the task
                if not writer_task.done():
                    writer_task.cancel()
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

    async def _writer_loop(self, replies: asyncio.Queue,
                           writer: asyncio.StreamWriter) -> None:
        # Keeps consuming until it sees _CLOSE even after the socket dies:
        # returning early would leave the reader blocked forever on a full
        # bounded queue (and the connection gauge leaked).  After a write
        # error, replies are drained and discarded.
        alive = True
        while True:
            reply = await replies.get()
            if reply is _CLOSE:
                return
            if not alive:
                continue
            saw_close = False
            try:
                writer.write(encode_frame(reply))
                # greedily fold already-queued replies into one syscall
                while True:
                    try:
                        reply = replies.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if reply is _CLOSE:
                        saw_close = True
                        break
                    writer.write(encode_frame(reply))
                await writer.drain()
            except (ConnectionError, OSError):
                # client went away mid-write; the reader loop will see EOF
                alive = False
            if saw_close:
                return

    # -- request execution -----------------------------------------------------

    def _execute(self, request: Dict[str, Any]) -> Dict[str, Any]:
        rid = request.get("id")
        if not isinstance(rid, (int, type(None))):
            rid = None
        version = request.get("v", PROTOCOL_VERSION)
        if version != PROTOCOL_VERSION:
            self.stats["errors"] += 1
            return error_reply(rid, ERR_BAD_VERSION,
                               f"server speaks protocol {PROTOCOL_VERSION}, "
                               f"request used {version!r}")
        op = request.get("op")
        if op not in OPS:
            self.stats["errors"] += 1
            return error_reply(rid, ERR_UNSUPPORTED_OP, f"unknown op {op!r}")
        self._metrics["requests"].inc()
        # a METRICS scrape is never timed: observing its own latency would
        # mutate the histogram after rendering, breaking the guarantee that
        # the reply matches a direct render of the same registries
        timed = self.registry.enabled and op != "METRICS"
        t0 = time.perf_counter() if timed else 0.0
        try:
            if op == "BATCH":
                reply = self._execute_batch(rid, request)
            else:
                body = self._execute_single(op, request,
                                            self.backend.snapshot())
                if not body.get("ok", False):
                    self.stats["errors"] += 1
                reply = dict(body, id=rid)
        except Exception as exc:  # defensive: a bug must not kill the loop
            self.stats["errors"] += 1
            reply = error_reply(rid, ERR_INTERNAL,
                                f"{type(exc).__name__}: {exc}")
        if timed:
            # inline observe: op-latency children are written only from
            # this (the event-loop) thread, so the per-request fast path
            # skips the registry lock and the method dispatch — this is
            # the hottest instrument in the stack
            hist = self._op_latency[op]
            elapsed = time.perf_counter() - t0
            hist.counts[bisect_left(hist.buckets, elapsed)] += 1
            hist.sum += elapsed
            hist.count += 1
        return reply

    def _execute_batch(self, rid: Optional[int],
                       request: Dict[str, Any]) -> Dict[str, Any]:
        subs = request.get("requests")
        if not isinstance(subs, list):
            return error_reply(rid, ERR_BAD_BATCH,
                               "BATCH needs a 'requests' list")
        if len(subs) > self.max_batch:
            return error_reply(rid, ERR_BAD_BATCH,
                               f"batch of {len(subs)} exceeds cap "
                               f"{self.max_batch}")
        # one snapshot for the whole batch: items can never straddle a refresh
        snapshot = self.backend.snapshot()
        self.stats["batches"] += 1
        self.stats["batch_items"] += len(subs)
        replies = []
        for sub in subs:
            if not isinstance(sub, dict):
                replies.append(error_reply(None, ERR_BAD_BATCH,
                                           "batch item is not an object"))
                continue
            sub_op = sub.get("op")
            if sub_op == "BATCH":
                replies.append(error_reply(sub.get("id"), ERR_BAD_BATCH,
                                           "batches do not nest"))
                continue
            if sub_op not in OPS:
                replies.append(error_reply(sub.get("id"), ERR_UNSUPPORTED_OP,
                                           f"unknown op {sub_op!r}"))
                continue
            body = self._execute_single(sub_op, sub, snapshot)
            # only copy when the item carried an id: batch items usually
            # correlate by position, and coalesced bodies serialize as-is
            sub_id = sub.get("id")
            replies.append(dict(body, id=sub_id) if sub_id is not None
                           else body)
        return ok_reply(rid, replies=replies)

    def _execute_single(self, op: str, request: Dict[str, Any],
                        snapshot: Optional[FairshareSnapshot]
                        ) -> Dict[str, Any]:
        """Reply *body* (no id) for one non-batch op."""
        if op == "PING":
            body: Dict[str, Any] = {"ok": True, "pong": True}
            if "payload" in request:
                body["payload"] = request["payload"]
            return body
        if op == "INFO":
            return {"ok": True, "protocol": PROTOCOL_VERSION,
                    "info": self.backend.info(), "stats": dict(self.stats)}
        if op == "METRICS":
            # requests_total was already incremented for this request, so
            # the scrape observes itself exactly once — and byte-for-byte
            # matches a direct render of the same registries afterwards
            return {"ok": True,
                    "content_type": "text/plain; version=0.0.4",
                    "text": render_many([self.registry,
                                         self.backend.registry])}
        if op == "REPORT_USAGE":
            return self._report_usage(request)
        # key-addressed reads: coalesce identical keys per snapshot
        user = request.get("user")
        if not isinstance(user, str) or not user:
            return {"ok": False,
                    "error": {"code": ERR_MALFORMED,
                              "message": f"{op} needs a 'user' string"}}
        if op == "GET_FAIRSHARE" and request.get("horizons"):
            # freshness-annotated reads bypass the coalescing map: its key
            # is (op, user, seq), which cannot distinguish the flag, and
            # the staleness values depend on "now", not on the snapshot
            return self._get_fairshare(user, snapshot, with_horizons=True)
        seq = snapshot.seq if snapshot is not None else -1
        key = (op, user, seq)
        cached = self._coalesce.get(key)
        if cached is not None:
            self.stats["coalesced"] += 1
            return cached
        if op == "GET_FAIRSHARE":
            body = self._get_fairshare(user, snapshot)
        elif op == "GET_VECTOR":
            body = self._get_vector(user, snapshot)
        else:  # RESOLVE_IDENTITY
            body = self._resolve_identity(user)
            if not body["ok"]:
                # an IRS mapping may be stored at any moment; a memoized
                # negative answer would outlive it within this snapshot
                return body
        if len(self._coalesce) >= self._coalesce_size:
            self._coalesce.popitem(last=False)
        self._coalesce[key] = body
        return body

    # -- op implementations ----------------------------------------------------

    def _get_fairshare(self, user: str,
                       snapshot: Optional[FairshareSnapshot],
                       with_horizons: bool = False) -> Dict[str, Any]:
        value, known, snap = self.backend.lookup_fairshare(user, snapshot)
        body: Dict[str, Any] = {"ok": True, "value": value, "known": known}
        if snap is not None:
            body["seq"] = snap.seq
            body["epoch"] = list(snap.epoch) if isinstance(snap.epoch, tuple) \
                else snap.epoch
            if with_horizons:
                body["horizons"] = dict(snap.horizons)
                body["staleness"] = snap.staleness(self.backend.now())
        return body

    def _get_vector(self, user: str,
                    snapshot: Optional[FairshareSnapshot]) -> Dict[str, Any]:
        vector = self.backend.vector(user, snapshot)
        if vector is None:
            code = ERR_UNKNOWN_USER
            if snapshot is not None and snapshot.result is not None:
                path = snapshot.identity_map.get(user, user)
                flat = snapshot.result.flat
                if snapshot.resolve_path(user) or (
                        path in flat.path_index
                        and path not in flat.leaf_slot):
                    code = ERR_NOT_A_LEAF
            return {"ok": False,
                    "error": {"code": code,
                              "message": f"no vector for {user!r}"}}
        return {"ok": True, "elements": list(vector.elements),
                "resolution": vector.resolution,
                "seq": snapshot.seq if snapshot is not None else -1}

    def _resolve_identity(self, user: str) -> Dict[str, Any]:
        identity = self.backend.resolve_identity(user)
        if identity is None:
            return {"ok": False,
                    "error": {"code": ERR_UNKNOWN_USER,
                              "message": f"cannot resolve {user!r}"}}
        return {"ok": True, "identity": identity}

    def _report_usage(self, request: Dict[str, Any]) -> Dict[str, Any]:
        user = request.get("user")
        start = request.get("start")
        end = request.get("end")
        cores = request.get("cores", 1)
        if not isinstance(user, str) or not user \
                or not isinstance(start, (int, float)) \
                or not isinstance(end, (int, float)) \
                or not isinstance(cores, int) or cores < 1 or end < start:
            return {"ok": False,
                    "error": {"code": ERR_MALFORMED,
                              "message": "REPORT_USAGE needs user/start/end"
                                         " (end >= start, cores >= 1)"}}
        accepted = self.backend.report_usage(user, start, end, cores)
        return {"ok": True, "accepted": accepted}


class ServerThread:
    """Run an :class:`AequusServer` on a private event loop thread.

    Tests, benchmarks and the daemon embed the server next to code driving
    the simulation engine; this wrapper owns the loop, starts the server
    (resolving port 0 to the real ephemeral port before returning), and
    tears both down on :meth:`stop`.
    """

    def __init__(self, server: AequusServer):
        self.server = server
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def host(self) -> str:
        return self.server.host

    def start(self, timeout: float = 10.0) -> "ServerThread":
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run, name="aequusd",
                                        daemon=True)
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("aequusd server thread failed to start")
        if self._startup_error is not None:
            raise RuntimeError("aequusd failed to bind") \
                from self._startup_error
        return self

    @staticmethod
    def _quiet_cancelled(loop: asyncio.AbstractEventLoop,
                         context: Dict[str, Any]) -> None:
        # cancelling connection handlers at teardown makes asyncio streams
        # report a spurious "Exception in callback ... CancelledError"
        if isinstance(context.get("exception"), asyncio.CancelledError):
            return
        loop.default_exception_handler(context)

    def _run(self) -> None:
        assert self.loop is not None
        asyncio.set_event_loop(self.loop)
        self.loop.set_exception_handler(self._quiet_cancelled)
        try:
            self.loop.run_until_complete(self.server.start())
        except BaseException as exc:  # bind failure etc.
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        try:
            self.loop.run_forever()
        finally:
            self.server.close()
            tasks = [t for t in asyncio.all_tasks(self.loop) if not t.done()]
            for task in tasks:
                task.cancel()
            if tasks:
                self.loop.run_until_complete(
                    asyncio.gather(*tasks, return_exceptions=True))
            self.loop.run_until_complete(self.loop.shutdown_asyncgens())
            self.loop.close()

    def stop(self, timeout: float = 10.0) -> None:
        if self.loop is None or self._thread is None:
            return
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout)
        self._thread = None
        self.loop = None
