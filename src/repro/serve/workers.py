"""Per-core worker pool for the sharded serve plane.

One parent process owns the site stack (engine, FCS, USS) and publishes
every refresh into shared memory via
:class:`~repro.serve.shm.ShmSnapshotWriter`.  :class:`WorkerPool` forks N
worker processes; each one attaches the segment read-only
(:class:`~repro.serve.shm.ShmSnapshotReader` / ``ShmBackend``) and runs a
full dual-protocol :class:`~repro.serve.server.AequusServer` on its *own*
``SO_REUSEPORT`` listening socket, so the kernel load-balances accepted
connections across workers and no worker ever touches the parent heap on
the query path.

The only upstream traffic is usage ingress: workers forward REPORT_USAGE
records over a shared pipe as length-prefixed JSON (kept under
``PIPE_BUF`` so concurrent writers never interleave), and a parent drain
thread feeds them to the site's usage service.

Cross-worker observability runs over a second, tiny shared-memory block:
each worker heartbeats its counters into a fixed 16-slot u64 row, so any
single worker can answer INFO/METRICS with fleet-wide aggregates (the
``connections_active`` a client sees is the sum over all rows, not the
one worker it happened to dial), and the parent monitor republishes the
same rows into the site registry.  The monitor also restarts crashed
workers: the listening socket lives in the parent, so a restart re-forks
onto the same fd and in-flight siblings are unaffected.

All sockets are bound in the parent *before* the first fork — port 0
works (the first bind learns the port, the rest reuse it) — and the pool
must be started before the daemon's tick thread, so no forked child ever
holds a copy of a running thread's locks.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import signal
import socket
import struct
import threading
import time
from multiprocessing import shared_memory
from typing import Any, Callable, Dict, List, Optional

from ..obs import trace
from .server import AequusServer
from .shm import ShmBackend, ShmSnapshotReader, _attach

__all__ = ["WorkerPool", "WorkerStatsBlock"]

#: u64 slots per worker row in the stats block
STATS_SLOTS = 16
ROW_BYTES = STATS_SLOTS * 8
_ROW = struct.Struct("=%dQ" % STATS_SLOTS)

# row slot indices (stable: `aequus-repro probe` and tests read these)
S_PID = 0
S_HEARTBEAT = 1
S_REQUESTS = 2
S_BINARY_REQUESTS = 3
S_ERRORS = 4
S_COALESCED = 5
S_BATCHES = 6
S_BATCH_ITEMS = 7
S_CONNECTIONS = 8
S_CONNECTIONS_ACTIVE = 9
S_OVERSIZED = 10
S_MALFORMED = 11

#: aggregate dict keys, in row order (pid/heartbeat excluded)
_AGG_KEYS = (
    ("requests", S_REQUESTS),
    ("binary_requests", S_BINARY_REQUESTS),
    ("errors", S_ERRORS),
    ("coalesced", S_COALESCED),
    ("batches", S_BATCHES),
    ("batch_items", S_BATCH_ITEMS),
    ("connections", S_CONNECTIONS),
    ("connections_active", S_CONNECTIONS_ACTIVE),
    ("oversized_frames", S_OVERSIZED),
    ("malformed_frames", S_MALFORMED),
)

#: one usage record must fit a single atomic pipe write
_PIPE_MSG_MAX = 3500
_PIPE_LEN = struct.Struct(">I")


class WorkerStatsBlock:
    """Fixed-size shared-memory stats table: one 16-u64 row per worker.

    Rows are written wholesale by their owning worker (a torn read of
    monitoring counters is harmless — every slot is an independent u64)
    and read by anyone: sibling workers aggregating for INFO, the parent
    monitor, tests.
    """

    def __init__(self, shm: shared_memory.SharedMemory, n_workers: int,
                 owner: bool):
        self.shm = shm
        self.n_workers = n_workers
        self._owner = owner

    @classmethod
    def create(cls, n_workers: int) -> "WorkerStatsBlock":
        shm = shared_memory.SharedMemory(create=True,
                                         size=n_workers * ROW_BYTES)
        shm.buf[:] = bytes(n_workers * ROW_BYTES)
        return cls(shm, n_workers, owner=True)

    @classmethod
    def attach(cls, name: str, n_workers: int) -> "WorkerStatsBlock":
        return cls(_attach(name), n_workers, owner=False)

    @property
    def name(self) -> str:
        return self.shm.name

    def write_row(self, worker_id: int, values: Dict[int, int]) -> None:
        row = [0] * STATS_SLOTS
        for slot, value in values.items():
            row[slot] = max(0, int(value))
        _ROW.pack_into(self.shm.buf, worker_id * ROW_BYTES, *row)

    def read_row(self, worker_id: int) -> tuple:
        return _ROW.unpack_from(self.shm.buf, worker_id * ROW_BYTES)

    def zero_row(self, worker_id: int) -> None:
        at = worker_id * ROW_BYTES
        self.shm.buf[at:at + ROW_BYTES] = bytes(ROW_BYTES)

    def rows(self) -> List[tuple]:
        return [self.read_row(i) for i in range(self.n_workers)]

    def aggregate(self) -> Dict[str, int]:
        """Fleet-wide sums over every live (pid != 0) row."""
        totals = {key: 0 for key, _ in _AGG_KEYS}
        workers = 0
        for row in self.rows():
            if row[S_PID] == 0:
                continue
            workers += 1
            for key, slot in _AGG_KEYS:
                totals[key] += row[slot]
        totals["workers"] = workers
        return totals

    def render_metrics(self) -> str:
        """Per-worker Prometheus lines (appended to METRICS scrapes)."""
        lines = [
            "# HELP aequus_worker_requests_total Requests executed per "
            "worker process",
            "# TYPE aequus_worker_requests_total counter",
        ]
        active = [
            "# HELP aequus_worker_connections_active Open connections per "
            "worker process",
            "# TYPE aequus_worker_connections_active gauge",
        ]
        for i, row in enumerate(self.rows()):
            if row[S_PID] == 0:
                continue
            label = 'worker="%d",pid="%d"' % (i, row[S_PID])
            lines.append("aequus_worker_requests_total{%s} %d"
                         % (label, row[S_REQUESTS]))
            active.append("aequus_worker_connections_active{%s} %d"
                          % (label, row[S_CONNECTIONS_ACTIVE]))
        return "\n".join(lines + active) + "\n"

    def close(self) -> None:
        try:
            self.shm.close()
        except BufferError:  # a live view pins the mmap; leave it to exit
            pass

    def unlink(self) -> None:
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass


def _server_row(server: AequusServer) -> Dict[int, int]:
    stats = server.stats
    return {
        S_PID: os.getpid(),
        S_REQUESTS: stats["requests"],
        S_BINARY_REQUESTS: stats["binary_requests"],
        S_ERRORS: stats["errors"],
        S_COALESCED: stats["coalesced"],
        S_BATCHES: stats["batches"],
        S_BATCH_ITEMS: stats["batch_items"],
        S_CONNECTIONS: stats["connections"],
        S_CONNECTIONS_ACTIVE: stats["connections_active"],
        S_OVERSIZED: stats["oversized_frames"],
        S_MALFORMED: stats["malformed_frames"],
    }


async def _worker_serve(server: AequusServer, stats: WorkerStatsBlock,
                        worker_id: int, heartbeat: float) -> None:
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, stop.set)
    await server.start()
    beats = 0
    while not stop.is_set():
        beats += 1
        row = _server_row(server)
        row[S_HEARTBEAT] = beats
        stats.write_row(worker_id, row)
        try:
            await asyncio.wait_for(stop.wait(), heartbeat)
        except asyncio.TimeoutError:
            pass
    await server.stop()


def _worker_main(worker_id: int, n_workers: int, shm_name: str,
                 stats_name: str, socks: List[socket.socket],
                 usage_wfd: int, site: str, refresh_interval: float,
                 binary: bool, heartbeat: float,
                 trace_spool: Optional[str],
                 trace_meta: Optional[Dict[str, Any]],
                 server_kwargs: Dict[str, Any]) -> None:
    """Forked worker entry point: serve the shm plane on socks[worker_id].

    Runs only child-owned state — the parent heap it inherited (engine,
    FCS, registry) is never touched, so copy-on-write keeps the workers
    cheap and the parent's threads can never deadlock a child.
    """
    # siblings' listening sockets were inherited by the fork; close them so
    # a crashed sibling's accept queue never strands connections here
    for i, sock in enumerate(socks):
        if i != worker_id:
            sock.close()
    # the fork copied the parent tracer's ring: discard the stale events
    # now so nothing in this process can ever export them a second time
    # (the parent still owns the originals and spools them itself)
    trace.default_tracer().clear()
    if trace_spool is not None:
        spool = trace.TraceSpool(trace_spool)
        meta = dict(trace_meta or {})

        def trace_export() -> Dict[str, Any]:
            # exactly-once fleet-wide: the flock-guarded drain empties the
            # parent's spool no matter which worker the client dialed
            body = dict(meta)
            body["events"] = spool.drain()
            body["dropped"] = 0
            body["worker"] = worker_id
            return body

        server_kwargs = dict(server_kwargs, trace_export=trace_export)
    stats = WorkerStatsBlock.attach(stats_name, n_workers)
    reader = ShmSnapshotReader(shm_name)

    def usage_sink(user: str, start: float, end: float, cores: int) -> bool:
        payload = json.dumps({"u": user, "s": start, "e": end,
                              "c": cores}).encode("utf-8")
        if len(payload) > _PIPE_MSG_MAX:
            return False
        # one write, under PIPE_BUF: atomic even with N workers writing
        os.write(usage_wfd, _PIPE_LEN.pack(len(payload)) + payload)
        return True

    backend = ShmBackend(reader, site=site, usage_sink=usage_sink,
                         refresh_interval=refresh_interval)

    def aggregator() -> Dict[str, int]:
        # refresh our own row first so INFO is exact for the answering
        # worker and at most one heartbeat stale for its siblings
        stats.write_row(worker_id, _server_row(server))
        return stats.aggregate()

    server = AequusServer(
        backend, sock=socks[worker_id], binary=binary,
        identity={"worker": worker_id, "workers": n_workers, "mode": "shm"},
        stats_aggregator=aggregator,
        extra_metrics=stats.render_metrics,
        **server_kwargs)
    try:
        asyncio.run(_worker_serve(server, stats, worker_id, heartbeat))
    except KeyboardInterrupt:
        pass
    finally:
        reader.close()
        stats.close()


class WorkerPool:
    """Fork, supervise, and aggregate N shm-serving worker processes."""

    def __init__(self, shm_name: str, n_workers: int,
                 host: str = "127.0.0.1", port: int = 0,
                 site: str = "",
                 usage_sink: Optional[Callable[[str, float, float, int],
                                               Any]] = None,
                 registry=None,
                 binary: bool = True,
                 refresh_interval: float = 30.0,
                 heartbeat: float = 0.25,
                 trace_spool: Optional[str] = None,
                 trace_meta: Optional[Dict[str, Any]] = None,
                 **server_kwargs: Any):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.shm_name = shm_name
        self.n_workers = n_workers
        self.host = host
        self.port = port
        self.site = site
        self.usage_sink = usage_sink
        self.binary = binary
        self.refresh_interval = refresh_interval
        self.heartbeat = heartbeat
        self.trace_spool = trace_spool
        self.trace_meta = trace_meta
        self.server_kwargs = server_kwargs
        self.restarts = 0
        self._ctx = multiprocessing.get_context("fork")
        self._socks: List[socket.socket] = []
        self._procs: List[Optional[Any]] = [None] * n_workers
        self._stats: Optional[WorkerStatsBlock] = None
        self._usage_rfd: Optional[int] = None
        self._usage_wfd: Optional[int] = None
        self._drain: Optional[threading.Thread] = None
        self._monitor: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._started = False
        self._g_alive = None
        self._g_restarts = None
        if registry is not None:
            self._g_alive = registry.gauge(
                "aequus_workers_alive",
                "Worker processes currently serving").labels()
            self._g_restarts = registry.counter(
                "aequus_worker_restarts_total",
                "Workers restarted after a crash").labels()

    # -- lifecycle -----------------------------------------------------------

    def _bind_socket(self, port: int) -> socket.socket:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((self.host, port))
        sock.listen(1024)
        return sock

    def start(self) -> "WorkerPool":
        if self._started:
            return self
        # bind every listening socket pre-fork: port 0 resolves on the
        # first bind and the rest SO_REUSEPORT onto the learned port
        first = self._bind_socket(self.port)
        self.port = first.getsockname()[1]
        self._socks = [first] + [self._bind_socket(self.port)
                                 for _ in range(self.n_workers - 1)]
        self._stats = WorkerStatsBlock.create(self.n_workers)
        self._usage_rfd, self._usage_wfd = os.pipe()
        self._stopping.clear()
        for i in range(self.n_workers):
            self._procs[i] = self._spawn(i)
        self._drain = threading.Thread(target=self._drain_usage,
                                       name="aequus-usage-drain", daemon=True)
        self._drain.start()
        self._monitor = threading.Thread(target=self._monitor_loop,
                                         name="aequus-worker-monitor",
                                         daemon=True)
        self._monitor.start()
        self._started = True
        if self._g_alive is not None:
            self._g_alive.set(self.n_workers)
        return self

    def _spawn(self, worker_id: int):
        proc = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, self.n_workers, self.shm_name,
                  self._stats.name, self._socks, self._usage_wfd,
                  self.site, self.refresh_interval, self.binary,
                  self.heartbeat, self.trace_spool, self.trace_meta,
                  self.server_kwargs),
            name=f"aequus-worker-{worker_id}", daemon=True)
        proc.start()
        return proc

    def stop(self) -> None:
        if not self._started:
            return
        self._stopping.set()
        for proc in self._procs:
            if proc is not None and proc.is_alive():
                proc.terminate()
        for i, proc in enumerate(self._procs):
            if proc is not None:
                proc.join(5.0)
                if proc.is_alive():
                    proc.kill()
                    proc.join(1.0)
                self._procs[i] = None
        if self._monitor is not None:
            self._monitor.join(2.0)
            self._monitor = None
        # closing the last write end EOFs the drain thread (children's
        # inherited copies died with them)
        if self._usage_wfd is not None:
            os.close(self._usage_wfd)
            self._usage_wfd = None
        if self._drain is not None:
            self._drain.join(2.0)
            self._drain = None
        for sock in self._socks:
            sock.close()
        self._socks = []
        if self._stats is not None:
            self._stats.close()
            self._stats.unlink()
            self._stats = None
        self._started = False
        if self._g_alive is not None:
            self._g_alive.set(0)

    # -- parent-side threads ---------------------------------------------------

    def _drain_usage(self) -> None:
        rfile = os.fdopen(self._usage_rfd, "rb")
        self._usage_rfd = None  # ownership moved to the file object
        try:
            while True:
                head = rfile.read(_PIPE_LEN.size)
                if len(head) < _PIPE_LEN.size:
                    return  # EOF: every writer closed
                (length,) = _PIPE_LEN.unpack(head)
                payload = rfile.read(length)
                if len(payload) < length:
                    return
                try:
                    record = json.loads(payload)
                    if self.usage_sink is not None:
                        self.usage_sink(record["u"], float(record["s"]),
                                        float(record["e"]),
                                        int(record.get("c", 1)))
                except Exception:
                    continue  # one bad record must not kill ingress
        finally:
            rfile.close()

    def _monitor_loop(self) -> None:
        while not self._stopping.wait(self.heartbeat):
            alive = 0
            for i, proc in enumerate(self._procs):
                if proc is None:
                    continue
                if proc.is_alive():
                    alive += 1
                    continue
                proc.join(0.1)
                if self._stopping.is_set():
                    break
                # crash: zero the stale row (its connections are gone) and
                # re-fork onto the same listening socket
                self.restarts += 1
                if self._g_restarts is not None:
                    self._g_restarts.inc()
                self._stats.zero_row(i)
                self._procs[i] = self._spawn(i)
                alive += 1
            if self._g_alive is not None:
                self._g_alive.set(alive)

    # -- observability ---------------------------------------------------------

    def aggregate(self) -> Dict[str, int]:
        """Fleet-wide counters (same shape workers serve in INFO)."""
        if self._stats is None:
            return {"workers": 0}
        totals = self._stats.aggregate()
        totals["restarts"] = self.restarts
        return totals

    def worker_pids(self) -> List[int]:
        return [proc.pid for proc in self._procs if proc is not None]

    def alive(self) -> int:
        return sum(1 for proc in self._procs
                   if proc is not None and proc.is_alive())

    def wait_ready(self, timeout: float = 10.0) -> bool:
        """Block until every worker has heartbeat at least once."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self._stats is not None and all(
                    row[S_PID] != 0 and row[S_HEARTBEAT] > 0
                    for row in self._stats.rows()):
                return True
            time.sleep(0.02)
        return False

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
