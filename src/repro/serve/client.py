"""Resilient client transport for aequusd.

:class:`AequusClient` is the asyncio transport: a small connection pool,
correlation-id pipelining (any number of requests in flight per
connection), per-request timeouts, and bounded exponential-backoff
reconnect-and-retry.  :class:`SyncAequusClient` wraps it behind a private
event-loop thread for synchronous callers — including ``libaequus``'s
socket transport mode, whose duck-type (``lookup_fairshare`` /
``resolve_identity`` / ``report_usage``) it implements.

Protocol upgrade: each new connection sends a JSON ``HELLO``; servers
that advertise ``binary: 2`` get the hot key-addressed ops
(GET_FAIRSHARE, GET_VECTOR, REPORT_USAGE, batch lookups) as struct-packed
v2 frames on the same socket — JSON and binary interleave freely, so
INFO/METRICS/RESOLVE_IDENTITY stay JSON.  Servers predating HELLO answer
``UNSUPPORTED_OP`` and the client stays on JSON, transparently.  The
client caches the integer leaf id a name-addressed binary reply returns
and switches that user to id-addressed requests; when the server's leaf
table is recompiled (``EPOCH_CHANGED``), the stale id is dropped and the
name path re-resolves it.

Retry semantics: a request that failed before its frame was written is
always safe to retry.  A request whose reply never arrived is ambiguous —
the server may or may not have executed it.  Reads are idempotent and
retried unconditionally; ``REPORT_USAGE`` is retried too (at-least-once:
a rare duplicate usage record decays away, a silently dropped one is a
permanent under-charge), but the ambiguity window is counted in
``stats["ambiguous_retries"]`` so operators can see it.

Reconnect backoff uses *full jitter*: attempt ``k`` sleeps a uniform
random duration in ``[0, min(backoff_max, backoff_base * 2**k)]``.  After
a worker restart every client re-dials; without jitter they would all
wake in lockstep at identical exponential marks and hammer the fresh
listener together (thundering herd) — the uniform draw spreads them over
the whole window.
"""

from __future__ import annotations

import asyncio
import itertools
import random
import struct
import threading
from typing import (Any, Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple)

from ..core.vector import FairshareVector
from ..obs.registry import MetricsRegistry, StatsView
from ..services.irs import IdentityResolutionError
from .protocol import (BIN_ACCEPTED, BIN_FS_REPLY, BIN_HEADER, BIN_REP_MAGIC,
                       BIN_VEC_HEAD, BST_EPOCH_CHANGED, BST_OK,
                       BST_UNKNOWN_USER, ERR_UNKNOWN_USER, HEADER,
                       MAX_FRAME_BYTES, NO_LEAF_ID, PROTOCOL_VERSION,
                       bin_batch_fairshare, bin_get_fairshare_by_id,
                       bin_get_fairshare_by_name, bin_get_vector_by_name,
                       bin_report_usage, decode_bin_error, decode_payload,
                       encode_frame)

__all__ = ["AequusClient", "SyncAequusClient", "AequusServerError",
           "AequusTransportError"]

_READ_CHUNK = 256 * 1024


class AequusTransportError(ConnectionError):
    """The request could not be completed after all retry attempts."""


class AequusServerError(Exception):
    """The server answered with a structured error reply."""

    def __init__(self, code: str, message: str):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message

    @classmethod
    def from_reply(cls, reply: Dict[str, Any]) -> "AequusServerError":
        error = reply.get("error") or {}
        return cls(error.get("code", "UNKNOWN"), error.get("message", ""))


class _RequestFailed(Exception):
    """Internal: transport failure, remembering whether the frame went out."""

    def __init__(self, sent: bool, cause: BaseException):
        super().__init__(str(cause))
        self.sent = sent
        self.cause = cause


class _Connection:
    """One pooled connection: id-correlated pipelining over a single socket.

    JSON and binary replies share the correlation-id space (the id
    counter is per connection), so one buffered read loop demultiplexes
    both framings: a JSON future resolves to the reply dict, a binary
    future to ``(status, body)``.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, max_frame: int):
        self.reader = reader
        self.writer = writer
        self.max_frame = max_frame
        self._ids = itertools.count(1)
        self._pending: Dict[int, asyncio.Future] = {}
        self._reader_task = asyncio.ensure_future(self._read_loop())
        self.broken = False
        #: negotiated per connection via HELLO (see AequusClient._connection)
        self.binary = False

    async def _read_loop(self) -> None:
        buf = bytearray()
        try:
            while True:
                chunk = await self.reader.read(_READ_CHUNK)
                if not chunk:
                    raise ConnectionError("connection closed by server")
                buf += chunk
                pos = 0
                end = len(buf)
                while pos < end:
                    if buf[pos] == BIN_REP_MAGIC:
                        if end - pos < BIN_HEADER.size:
                            break
                        (_, status, _flags, rid,
                         body_len) = BIN_HEADER.unpack_from(buf, pos)
                        if body_len > self.max_frame:
                            raise ConnectionError("oversized binary reply")
                        if end - pos < BIN_HEADER.size + body_len:
                            break
                        at = pos + BIN_HEADER.size
                        body = bytes(buf[at:at + body_len])
                        pos = at + body_len
                        future = self._pending.pop(rid, None)
                        if future is not None and not future.done():
                            future.set_result((status, body))
                    else:
                        if end - pos < HEADER.size:
                            break
                        (length,) = HEADER.unpack_from(buf, pos)
                        if length > self.max_frame:
                            raise ConnectionError("oversized reply frame")
                        if end - pos < HEADER.size + length:
                            break
                        at = pos + HEADER.size
                        reply = decode_payload(bytes(buf[at:at + length]))
                        pos = at + length
                        future = self._pending.pop(reply.get("id"), None)
                        if future is not None and not future.done():
                            future.set_result(reply)
                del buf[:pos]
        except asyncio.CancelledError:
            self._fail_pending(ConnectionError("connection closed"))
            raise
        except Exception as exc:
            self._fail_pending(exc)

    def _fail_pending(self, exc: BaseException) -> None:
        self.broken = True
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(
                    _RequestFailed(sent=True, cause=exc))

    def _timeout_one(self, rid: int) -> None:
        future = self._pending.pop(rid, None)
        if future is not None and not future.done():
            self.broken = True
            future.set_exception(_RequestFailed(
                sent=True, cause=asyncio.TimeoutError()))

    async def _await_reply(self, rid: int, future: asyncio.Future,
                           loop: asyncio.AbstractEventLoop,
                           timeout: float) -> Any:
        # a plain timer handle is far cheaper than asyncio.wait_for on a
        # hot path: pipelined reads pay it tens of thousands of times/s
        handle = loop.call_later(timeout, self._timeout_one, rid)
        try:
            return await future
        finally:
            handle.cancel()

    def _send(self, rid: int, frame: bytes,
              future: asyncio.Future) -> None:
        try:
            self.writer.write(frame)
            # only pay for drain() when the transport actually buffered up
            # (the hot path writes straight through to the socket)
        except (ConnectionError, OSError) as exc:
            self._pending.pop(rid, None)
            self.broken = True
            raise _RequestFailed(sent=False, cause=exc) from exc

    async def request(self, payload: Dict[str, Any],
                      timeout: float) -> Dict[str, Any]:
        rid = next(self._ids)
        payload = dict(payload, v=PROTOCOL_VERSION, id=rid)
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending[rid] = future
        self._send(rid, encode_frame(payload), future)
        if self.writer.transport.get_write_buffer_size() > 65536:
            await self.writer.drain()
        return await self._await_reply(rid, future, loop, timeout)

    async def request_bin(self, build: Callable[[int], bytes],
                          timeout: float) -> Tuple[int, bytes]:
        """Send one binary frame (built with a fresh rid); (status, body)."""
        rid = next(self._ids)
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending[rid] = future
        self._send(rid, build(rid), future)
        if self.writer.transport.get_write_buffer_size() > 65536:
            await self.writer.drain()
        return await self._await_reply(rid, future, loop, timeout)

    async def close(self) -> None:
        self.broken = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class AequusClient:
    """Pooled, pipelining, retrying asyncio client for aequusd."""

    #: bound on the user -> (gen, leaf id) cache
    LEAF_CACHE_SIZE = 1 << 20

    def __init__(self, host: str = "127.0.0.1", port: int = 4730,
                 pool_size: int = 2,
                 timeout: float = 5.0,
                 retries: int = 4,
                 backoff_base: float = 0.05,
                 backoff_max: float = 1.0,
                 max_frame: int = MAX_FRAME_BYTES,
                 binary: bool = True,
                 registry: Optional[MetricsRegistry] = None,
                 rng: Optional[random.Random] = None):
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        self.host = host
        self.port = port
        self.pool_size = pool_size
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.max_frame = max_frame
        #: attempt the v2 upgrade on new connections (HELLO negotiation)
        self.binary = binary
        self._rng = rng if rng is not None else random.Random()
        self._pool: List[Optional[_Connection]] = [None] * pool_size
        self._pool_locks = [asyncio.Lock() for _ in range(pool_size)]
        self._next_slot = itertools.count()
        #: user -> (leaf generation, leaf id), learned from binary replies
        self._leaf_ids: Dict[str, Tuple[int, int]] = {}
        self.registry = registry if registry is not None else MetricsRegistry(
            constant_labels={"component": "client"})
        events = self.registry.counter(
            "aequus_client_transport_total",
            "Client transport events: requests, retry/reconnect churn, "
            "ambiguity windows, final failures", ("event",))
        self.stats = StatsView({
            key: events.labels(event=key)
            for key in ("requests", "retries", "reconnects",
                        "transport_errors", "ambiguous_retries", "batches",
                        "binary_upgrades", "epoch_changes")})

    # -- lifecycle -----------------------------------------------------------

    async def __aenter__(self) -> "AequusClient":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()

    async def aclose(self) -> None:
        for i, conn in enumerate(self._pool):
            if conn is not None:
                await conn.close()
                self._pool[i] = None

    # -- transport core --------------------------------------------------------

    async def _connection(self, slot: int) -> _Connection:
        conn = self._pool[slot]
        if conn is not None and not conn.broken:
            return conn  # hot path: no lock round trip for a live connection
        async with self._pool_locks[slot]:
            conn = self._pool[slot]
            if conn is None or conn.broken:
                if conn is not None:
                    await conn.close()
                    self.stats["reconnects"] += 1
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(self.host, self.port),
                    self.timeout)
                conn = _Connection(reader, writer, self.max_frame)
                if self.binary:
                    await self._negotiate(conn)
                self._pool[slot] = conn
            return conn

    async def _negotiate(self, conn: _Connection) -> None:
        """HELLO once per connection; old servers answer UNSUPPORTED_OP."""
        try:
            reply = await conn.request({"op": "HELLO"}, self.timeout)
        except _RequestFailed as exc:
            await conn.close()
            cause = exc.cause
            if isinstance(cause, (ConnectionError, OSError,
                                  asyncio.TimeoutError)):
                raise cause
            raise ConnectionError(str(cause)) from cause
        if reply.get("ok") and int(reply.get("binary", 0)) >= 2:
            conn.binary = True
            self.stats["binary_upgrades"] += 1

    def _backoff(self, attempt: int) -> float:
        """Full jitter: uniform in [0, min(max, base * 2^attempt)]."""
        cap = min(self.backoff_max, self.backoff_base * (2 ** attempt))
        return self._rng.uniform(0.0, cap)

    async def _call(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one JSON request, reconnecting and retrying with backoff."""
        self.stats["requests"] += 1
        slot = next(self._next_slot) % self.pool_size
        last: Optional[BaseException] = None
        for attempt in range(self.retries + 1):
            if attempt:
                self.stats["retries"] += 1
                await asyncio.sleep(self._backoff(attempt - 1))
            try:
                conn = await self._connection(slot)
            except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
                last = exc
                continue
            try:
                reply = await conn.request(payload, self.timeout)
            except _RequestFailed as exc:
                if exc.sent:
                    self.stats["ambiguous_retries"] += 1
                last = exc.cause
                continue
            if not reply.get("ok", False):
                raise AequusServerError.from_reply(reply)
            return reply
        self.stats["transport_errors"] += 1
        raise AequusTransportError(
            f"aequusd at {self.host}:{self.port} unreachable after "
            f"{self.retries + 1} attempts: {last}")

    async def _call_bin(self, build: Callable[[int], bytes]
                        ) -> Optional[Tuple[int, bytes]]:
        """Binary twin of :meth:`_call`.

        Returns None when the negotiated connection turned out JSON-only
        (the caller then falls back to the JSON op), else (status, body).
        """
        self.stats["requests"] += 1
        slot = next(self._next_slot) % self.pool_size
        last: Optional[BaseException] = None
        for attempt in range(self.retries + 1):
            if attempt:
                self.stats["retries"] += 1
                await asyncio.sleep(self._backoff(attempt - 1))
            try:
                conn = await self._connection(slot)
            except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
                last = exc
                continue
            if not conn.binary:
                return None
            try:
                return await conn.request_bin(build, self.timeout)
            except _RequestFailed as exc:
                if exc.sent:
                    self.stats["ambiguous_retries"] += 1
                last = exc.cause
                continue
        self.stats["transport_errors"] += 1
        raise AequusTransportError(
            f"aequusd at {self.host}:{self.port} unreachable after "
            f"{self.retries + 1} attempts: {last}")

    def _raise_bin(self, status: int, body: bytes) -> None:
        err = decode_bin_error(status, body)
        raise AequusServerError(err["code"], err["message"])

    def _remember_leaf(self, user: str, gen: int, leaf_id: int) -> None:
        if leaf_id == NO_LEAF_ID:
            return
        if len(self._leaf_ids) >= self.LEAF_CACHE_SIZE:
            self._leaf_ids.clear()
        self._leaf_ids[user] = (gen, leaf_id)

    # -- single-key API --------------------------------------------------------

    async def _bin_lookup_fairshare(self, user: str
                                    ) -> Optional[Tuple[float, bool]]:
        cached = self._leaf_ids.get(user)
        if cached is not None:
            gen, leaf_id = cached
            res = await self._call_bin(
                lambda rid: bin_get_fairshare_by_id(rid, gen, leaf_id))
            if res is None:
                return None
            status, body = res
            if status == BST_OK:
                value, known, _seq, _gen, _leaf = BIN_FS_REPLY.unpack(body)
                return float(value), bool(known)
            if status not in (BST_EPOCH_CHANGED, BST_UNKNOWN_USER):
                self._raise_bin(status, body)
            # the leaf table moved under the cached id: re-resolve by name
            self.stats["epoch_changes"] += 1
            self._leaf_ids.pop(user, None)
        res = await self._call_bin(
            lambda rid: bin_get_fairshare_by_name(rid, user))
        if res is None:
            return None
        status, body = res
        if status != BST_OK:
            self._raise_bin(status, body)
        value, known, _seq, gen, leaf_id = BIN_FS_REPLY.unpack(body)
        if known:
            self._remember_leaf(user, gen, leaf_id)
        return float(value), bool(known)

    async def lookup_fairshare(self, user: str) -> Tuple[float, bool]:
        if self.binary:
            result = await self._bin_lookup_fairshare(user)
            if result is not None:
                return result
        reply = await self._call({"op": "GET_FAIRSHARE", "user": user})
        return float(reply["value"]), bool(reply["known"])

    async def get_fairshare(self, user: str) -> float:
        return (await self.lookup_fairshare(user))[0]

    async def lookup_fairshare_detail(self, user: str) -> Dict[str, Any]:
        """Freshness-annotated lookup: the full reply body, including the
        per-origin ``horizons``/``staleness`` the serving snapshot carries."""
        return await self._call({"op": "GET_FAIRSHARE", "user": user,
                                 "horizons": True})

    async def get_vector(self, user: str) -> FairshareVector:
        if self.binary:
            res = await self._call_bin(
                lambda rid: bin_get_vector_by_name(rid, user))
            if res is not None:
                status, body = res
                if status != BST_OK:
                    self._raise_bin(status, body)
                _seq, resolution, n = BIN_VEC_HEAD.unpack_from(body)
                elems = struct.unpack_from(">%dd" % n, body,
                                           BIN_VEC_HEAD.size)
                return FairshareVector(list(elems), resolution=resolution)
        reply = await self._call({"op": "GET_VECTOR", "user": user})
        return FairshareVector(reply["elements"],
                               resolution=int(reply["resolution"]))

    async def resolve_identity(self, system_user: str) -> str:
        try:
            reply = await self._call({"op": "RESOLVE_IDENTITY",
                                      "user": system_user})
        except AequusServerError as exc:
            if exc.code == ERR_UNKNOWN_USER:
                raise IdentityResolutionError(system_user) from exc
            raise
        return str(reply["identity"])

    async def report_usage(self, user: str, start: float, end: float,
                           cores: int = 1) -> bool:
        if self.binary:
            res = await self._call_bin(
                lambda rid: bin_report_usage(rid, user, float(start),
                                             float(end), int(cores)))
            if res is not None:
                status, body = res
                if status != BST_OK:
                    self._raise_bin(status, body)
                return bool(BIN_ACCEPTED.unpack(body)[0])
        reply = await self._call({"op": "REPORT_USAGE", "user": user,
                                  "start": start, "end": end, "cores": cores})
        return bool(reply["accepted"])

    async def ping(self, payload: Any = None) -> Dict[str, Any]:
        request: Dict[str, Any] = {"op": "PING"}
        if payload is not None:
            request["payload"] = payload
        return await self._call(request)

    async def hello(self) -> Dict[str, Any]:
        """Capability discovery (sent automatically on connect)."""
        return await self._call({"op": "HELLO"})

    async def info(self) -> Dict[str, Any]:
        return await self._call({"op": "INFO"})

    async def metrics(self) -> str:
        """Prometheus text exposition scraped from the server."""
        reply = await self._call({"op": "METRICS"})
        return str(reply["text"])

    async def trace_export(self) -> Dict[str, Any]:
        """Drain the daemon's tracer ring: events plus clock metadata.

        Destructive read — each recorded span is returned exactly once
        across all exports, fleet-wide even under a worker pool (any
        worker answers from the shared spool).
        """
        return await self._call({"op": "TRACE_EXPORT"})

    # -- batch API -------------------------------------------------------------

    async def batch(self, requests: Sequence[Dict[str, Any]]
                    ) -> List[Dict[str, Any]]:
        """Execute sub-requests as one atomic batch; returns reply bodies.

        Unlike the single-key API, per-item errors are returned in place
        (an item body with ``ok: false``), not raised — one bad key must
        not poison its batch.
        """
        self.stats["batches"] += 1
        reply = await self._call({"op": "BATCH", "requests": list(requests)})
        return reply["replies"]

    async def _bin_batch_lookup(self, users: List[str]
                                ) -> Optional[Dict[str, Tuple[float, bool]]]:
        out: Dict[str, Tuple[float, bool]] = {}
        # resolve (and cache) ids for users we have not seen; a user whose
        # id cannot stabilize (unknown, no row) is answered inline
        gens = set()
        for user in users:
            cached = self._leaf_ids.get(user)
            if cached is None:
                single = await self._bin_lookup_fairshare(user)
                if single is None:
                    return None  # connection degraded to JSON mid-way
                cached = self._leaf_ids.get(user)
                if cached is None:
                    out[user] = single
                    continue
            gens.add(cached[0])
        todo = [u for u in users if u not in out]
        if not todo:
            return out
        if len(gens) > 1:
            # ids span a recompile: drop and let the name path re-mint them
            self.stats["epoch_changes"] += 1
            for user in todo:
                self._leaf_ids.pop(user, None)
            for user in todo:
                single = await self._bin_lookup_fairshare(user)
                if single is None:
                    return None
                out[user] = single
            return out
        gen = gens.pop()
        ids = [self._leaf_ids[u][1] for u in todo]
        res = await self._call_bin(
            lambda rid: bin_batch_fairshare(rid, gen, ids))
        if res is None:
            return None
        status, body = res
        if status == BST_EPOCH_CHANGED:
            self.stats["epoch_changes"] += 1
            for user in todo:
                self._leaf_ids.pop(user, None)
            for user in todo:
                single = await self._bin_lookup_fairshare(user)
                if single is None:
                    return None
                out[user] = single
            return out
        if status != BST_OK:
            self._raise_bin(status, body)
        from .protocol import BIN_BATCH_REPLY_HEAD
        _seq, _gen, count = BIN_BATCH_REPLY_HEAD.unpack_from(body)
        values = struct.unpack_from(">%dd" % count, body,
                                    BIN_BATCH_REPLY_HEAD.size)
        flags_at = BIN_BATCH_REPLY_HEAD.size + 8 * count
        knowns = body[flags_at:flags_at + count]
        for user, value, known in zip(todo, values, knowns):
            out[user] = (float(value), bool(known))
        return out

    async def batch_lookup_fairshare(self, users: Iterable[str]
                                     ) -> Dict[str, Tuple[float, bool]]:
        """One round trip, one snapshot: users -> (value, known)."""
        users = list(users)
        if self.binary and users:
            self.stats["batches"] += 1
            out = await self._bin_batch_lookup(users)
            if out is not None:
                return out
        replies = await self.batch(
            [{"op": "GET_FAIRSHARE", "user": u} for u in users])
        out = {}
        for user, body in zip(users, replies):
            if body.get("ok"):
                out[user] = (float(body["value"]), bool(body["known"]))
        return out


class SyncAequusClient:
    """Blocking facade over :class:`AequusClient` (private loop thread).

    Implements the transport duck-type ``libaequus`` expects, so the
    existing RMS plugins can run over the socket path unmodified::

        lib = LibAequus.over_socket(SyncAequusClient(port=port), site="a")
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 4730,
                 **client_kwargs: Any):
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._loop.run_forever,
                                        name="aequus-client", daemon=True)
        self._thread.start()
        self._client = self._run(self._make_client(host, port, client_kwargs))

    @staticmethod
    async def _make_client(host: str, port: int,
                           kwargs: Dict[str, Any]) -> AequusClient:
        # the client binds futures/locks to the running loop, so build it
        # on the loop thread
        return AequusClient(host, port, **kwargs)

    def _run(self, coro: Any) -> Any:
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._loop.is_closed():
            return
        try:
            self._run(self._client.aclose())
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(5.0)
            self._loop.close()

    def __enter__(self) -> "SyncAequusClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @property
    def stats(self) -> Dict[str, int]:
        return self._client.stats

    # -- mirrored API ----------------------------------------------------------

    def lookup_fairshare(self, user: str) -> Tuple[float, bool]:
        return self._run(self._client.lookup_fairshare(user))

    def get_fairshare(self, user: str) -> float:
        return self._run(self._client.get_fairshare(user))

    def lookup_fairshare_detail(self, user: str) -> Dict[str, Any]:
        return self._run(self._client.lookup_fairshare_detail(user))

    def get_vector(self, user: str) -> FairshareVector:
        return self._run(self._client.get_vector(user))

    def resolve_identity(self, system_user: str) -> str:
        return self._run(self._client.resolve_identity(system_user))

    def report_usage(self, user: str, start: float, end: float,
                     cores: int = 1) -> bool:
        return self._run(self._client.report_usage(user, start, end, cores))

    def ping(self, payload: Any = None) -> Dict[str, Any]:
        return self._run(self._client.ping(payload))

    def hello(self) -> Dict[str, Any]:
        return self._run(self._client.hello())

    def info(self) -> Dict[str, Any]:
        return self._run(self._client.info())

    def metrics(self) -> str:
        return self._run(self._client.metrics())

    def trace_export(self) -> Dict[str, Any]:
        return self._run(self._client.trace_export())

    def batch(self, requests: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
        return self._run(self._client.batch(requests))

    def batch_lookup_fairshare(self, users: Iterable[str]
                               ) -> Dict[str, Tuple[float, bool]]:
        return self._run(self._client.batch_lookup_fairshare(list(users)))
