"""aequusd wire protocol: JSON frames (v1) and compact binary frames (v2).

A JSON frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON.  Both directions use the same framing; the JSON
payload is always a single object.

Requests carry ``{"v": <protocol version>, "id": <correlation id>,
"op": "<OP>", ...operands}``.  Replies echo ``id`` and carry either
``"ok": true`` plus result fields, or ``"ok": false`` plus a structured
``"error": {"code": "<CODE>", "message": "<human text>"}``.  Correlation
ids let a pipelining client match replies to requests without assuming
ordering (the server does reply in order, but the contract is the id).

Operations
----------
``GET_FAIRSHARE``     ``user`` -> ``value`` (projected scalar), ``known``,
                      ``seq``/``epoch`` of the serving snapshot.  With
                      ``"horizons": true`` the reply adds ``horizons``
                      (per-origin usage watermark the snapshot
                      incorporates) and ``staleness`` (its age now).
``GET_VECTOR``        ``user`` -> ``elements`` + ``resolution``.
``RESOLVE_IDENTITY``  ``user`` (system user) -> ``identity``.
``REPORT_USAGE``      ``user``/``start``/``end``/``cores`` -> ``accepted``.
``BATCH``             ``requests``: list of request objects (no nesting);
                      reply carries ``replies`` in the same order, all
                      served from ONE snapshot (no torn batches).
``PING``              liveness probe; echoes ``payload`` if present.
``INFO``              server, snapshot, and statistics summary.
``METRICS``           Prometheus text exposition of every registry wired
                      into the server (server, FCS, USS/UMS, network) as
                      ``text``; scrape with ``aequus-repro metrics``.
``TRACE_EXPORT``      drain the daemon's tracer ring: ``events`` (Chrome
                      ``trace_event`` objects, exactly-once per event)
                      plus clock metadata (``pid``, ``site``,
                      ``virtual_epoch``, ``time_factor``, ``dropped``)
                      so a fleet collector can align per-process clocks.

The frame length prefix is validated against a configurable cap before the
payload is read, so an adversarial or broken peer cannot make the server
buffer an arbitrarily large frame.

Binary protocol (v2)
--------------------
The hot read path pays for JSON twice per request: serialize on one side,
parse on the other.  Protocol v2 replaces both with fixed ``struct`` packs.
A binary frame is a 12-byte header followed by ``body_len`` body bytes::

    request:  magic 0xA3 | opcode u8 | flags u16 | rid u32 | body_len u32
    reply:    magic 0xA4 | status u8 | flags u16 | rid u32 | body_len u32

Because a JSON frame's first byte is the high byte of its length prefix —
always zero below a 16 MiB cap — the two framings are distinguishable on
the first byte, and one connection can interleave them freely: binary for
the hot key-addressed ops, JSON for everything else (INFO, METRICS, ...).
A client discovers binary support with the JSON ``HELLO`` op (old servers
answer ``UNSUPPORTED_OP``, new ones advertise ``binary: 2``) and upgrades
only after a positive answer, so existing JSON clients and servers
interoperate unmodified.

Key-addressed binary requests carry either a UTF-8 identity (flags bit 0
clear) or an integer *leaf id* plus the leaf-table generation it belongs
to (flags bit 0 set).  Leaf ids are row numbers into the snapshot's leaf
array — the server returns them on name lookups so clients cache the
mapping and skip string resolution entirely; a generation mismatch (the
policy was recompiled) answers ``EPOCH_CHANGED`` and the client
re-resolves by name.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, Optional

__all__ = [
    "PROTOCOL_VERSION",
    "BIN_PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "HEADER",
    "OPS",
    "ERR_MALFORMED",
    "ERR_BAD_VERSION",
    "ERR_UNSUPPORTED_OP",
    "ERR_UNKNOWN_USER",
    "ERR_NOT_A_LEAF",
    "ERR_OVERSIZED",
    "ERR_BAD_BATCH",
    "ERR_EPOCH_CHANGED",
    "ERR_INTERNAL",
    "ProtocolError",
    "MalformedFrame",
    "FrameTooLarge",
    "ConnectionClosed",
    "encode_frame",
    "decode_payload",
    "read_frame",
    "error_reply",
    "ok_reply",
    "BIN_REQ_MAGIC",
    "BIN_REP_MAGIC",
    "BIN_HEADER",
    "BF_BY_ID",
    "BOP_GET_FAIRSHARE",
    "BOP_GET_VECTOR",
    "BOP_REPORT_USAGE",
    "BOP_BATCH_FAIRSHARE",
    "BOP_PING",
    "BST_OK",
    "BIN_STATUS_CODES",
    "NO_LEAF_ID",
    "bin_request",
    "bin_error",
    "bin_get_fairshare_by_name",
    "bin_get_fairshare_by_id",
    "bin_batch_fairshare",
    "decode_bin_error",
]

#: bump on any incompatible frame or payload change
PROTOCOL_VERSION = 1

#: the struct-packed wire format (negotiated via the JSON ``HELLO`` op)
BIN_PROTOCOL_VERSION = 2

#: default cap on a single frame's payload size (1 MiB)
MAX_FRAME_BYTES = 1 << 20

#: 4-byte big-endian unsigned payload length
HEADER = struct.Struct(">I")

OPS = frozenset({"GET_FAIRSHARE", "GET_VECTOR", "RESOLVE_IDENTITY",
                 "REPORT_USAGE", "BATCH", "PING", "INFO", "METRICS",
                 "HELLO", "TRACE_EXPORT"})

# -- binary framing -----------------------------------------------------------

#: first byte of every binary request / reply frame.  A JSON frame's first
#: byte is the top byte of its u32 length prefix — zero for any frame below
#: 16 MiB — so the two framings never collide below that cap.
BIN_REQ_MAGIC = 0xA3
BIN_REP_MAGIC = 0xA4

#: magic, opcode (request) / status (reply), flags, rid, body_len
BIN_HEADER = struct.Struct(">BBHII")

#: request flag: the body addresses a leaf by ``(gen u32, leaf id u32)``
#: instead of a UTF-8 identity string
BF_BY_ID = 0x0001

BOP_GET_FAIRSHARE = 1
BOP_GET_VECTOR = 2
BOP_REPORT_USAGE = 3
BOP_BATCH_FAIRSHARE = 4
BOP_PING = 5

BIN_OPS = frozenset({BOP_GET_FAIRSHARE, BOP_GET_VECTOR, BOP_REPORT_USAGE,
                     BOP_BATCH_FAIRSHARE, BOP_PING})

#: reply statuses; non-zero statuses carry a UTF-8 message as the body
BST_OK = 0
BST_MALFORMED = 1
BST_UNSUPPORTED_OP = 2
BST_UNKNOWN_USER = 3
BST_NOT_A_LEAF = 4
BST_EPOCH_CHANGED = 5
BST_INTERNAL = 6
BST_OVERSIZED = 7
BST_BAD_BATCH = 8

#: sentinel leaf id in replies for identities with no stable row
NO_LEAF_ID = 0xFFFFFFFF

# binary request body layouts
BIN_BY_ID = struct.Struct(">II")             # gen, leaf id
BIN_REPORT = struct.Struct(">ddI")           # start, end, cores (+ name)
BIN_BATCH_HEAD = struct.Struct(">II")        # gen, count (+ count * u32 ids)

# binary reply body layouts
BIN_FS_REPLY = struct.Struct(">dB3xIII")     # value, known, seq, gen, leaf id
BIN_VEC_HEAD = struct.Struct(">IIH2x")       # seq, resolution, count (+ f64s)
BIN_BATCH_REPLY_HEAD = struct.Struct(">III")  # seq, gen, count
BIN_ACCEPTED = struct.Struct(">B")           # accepted

# precombined header+body structs for the server's hottest replies
BIN_FS_FULL = struct.Struct(">BBHII" + "dB3xIII")

# -- structured error codes ---------------------------------------------------

ERR_MALFORMED = "MALFORMED"          # frame payload is not a valid request
ERR_BAD_VERSION = "BAD_VERSION"      # protocol version mismatch
ERR_UNSUPPORTED_OP = "UNSUPPORTED_OP"
ERR_UNKNOWN_USER = "UNKNOWN_USER"    # identity cannot be resolved
ERR_NOT_A_LEAF = "NOT_A_LEAF"        # vector requested for a non-leaf node
ERR_OVERSIZED = "OVERSIZED"          # frame exceeded the size cap
ERR_BAD_BATCH = "BAD_BATCH"          # malformed or nested batch
ERR_EPOCH_CHANGED = "EPOCH_CHANGED"  # leaf-id generation no longer current
ERR_INTERNAL = "INTERNAL"

#: binary status byte -> structured error code (shared vocabulary with JSON)
BIN_STATUS_CODES = {
    BST_MALFORMED: ERR_MALFORMED,
    BST_UNSUPPORTED_OP: ERR_UNSUPPORTED_OP,
    BST_UNKNOWN_USER: ERR_UNKNOWN_USER,
    BST_NOT_A_LEAF: ERR_NOT_A_LEAF,
    BST_EPOCH_CHANGED: ERR_EPOCH_CHANGED,
    BST_INTERNAL: ERR_INTERNAL,
    BST_OVERSIZED: ERR_OVERSIZED,
    BST_BAD_BATCH: ERR_BAD_BATCH,
}


class ProtocolError(Exception):
    """Base class for framing-level failures."""


class MalformedFrame(ProtocolError):
    """The payload bytes are not valid UTF-8 JSON, or not an object."""


class FrameTooLarge(ProtocolError):
    """The declared payload length exceeds the configured cap."""

    def __init__(self, declared: int, limit: int):
        super().__init__(f"frame of {declared} bytes exceeds cap {limit}")
        self.declared = declared
        self.limit = limit


class ConnectionClosed(ProtocolError):
    """The peer closed the connection (cleanly or mid-frame)."""


# -- framing ------------------------------------------------------------------

def encode_frame(payload: Dict[str, Any]) -> bytes:
    """Serialize one payload object into a length-prefixed frame."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return HEADER.pack(len(body)) + body


def decode_payload(body: bytes) -> Dict[str, Any]:
    """Parse a frame body; raises :class:`MalformedFrame` on garbage."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise MalformedFrame(str(exc)) from exc
    if not isinstance(payload, dict):
        raise MalformedFrame(f"payload is {type(payload).__name__}, "
                             "expected an object")
    return payload


async def read_frame(reader: asyncio.StreamReader,
                     max_frame: int = MAX_FRAME_BYTES) -> Dict[str, Any]:
    """Read one frame; the length prefix is validated before the payload.

    Raises :class:`ConnectionClosed` at a clean EOF between frames or a
    truncation mid-frame, :class:`FrameTooLarge` when the declared length
    exceeds ``max_frame`` (the payload is NOT read in that case), and
    :class:`MalformedFrame` for undecodable payloads.
    """
    try:
        header = await reader.readexactly(HEADER.size)
    except (asyncio.IncompleteReadError, ConnectionResetError) as exc:
        raise ConnectionClosed("eof") from exc
    (length,) = HEADER.unpack(header)
    if length > max_frame:
        raise FrameTooLarge(length, max_frame)
    try:
        body = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionResetError) as exc:
        raise ConnectionClosed("truncated frame") from exc
    return decode_payload(body)


# -- reply builders -----------------------------------------------------------

def ok_reply(request_id: Optional[int], **fields: Any) -> Dict[str, Any]:
    reply: Dict[str, Any] = {"id": request_id, "ok": True}
    reply.update(fields)
    return reply


def error_reply(request_id: Optional[int], code: str,
                message: str) -> Dict[str, Any]:
    return {"id": request_id, "ok": False,
            "error": {"code": code, "message": message}}


# -- binary frame builders ----------------------------------------------------

def bin_request(opcode: int, rid: int, body: bytes = b"",
                flags: int = 0) -> bytes:
    """Pack one binary request frame."""
    return BIN_HEADER.pack(BIN_REQ_MAGIC, opcode, flags, rid,
                           len(body)) + body


def bin_reply(status: int, rid: int, body: bytes = b"",
              flags: int = 0) -> bytes:
    """Pack one binary reply frame."""
    return BIN_HEADER.pack(BIN_REP_MAGIC, status, flags, rid,
                           len(body)) + body


def bin_error(status: int, rid: int, message: str = "") -> bytes:
    """Pack an error reply; the body is the UTF-8 message."""
    return bin_reply(status, rid, message.encode("utf-8"))


def decode_bin_error(status: int, body: bytes) -> Dict[str, Any]:
    """Lift a binary error reply into the JSON error shape."""
    code = BIN_STATUS_CODES.get(status, ERR_INTERNAL)
    return {"code": code, "message": body.decode("utf-8", "replace")}


def bin_get_fairshare_by_name(rid: int, user: str) -> bytes:
    return bin_request(BOP_GET_FAIRSHARE, rid, user.encode("utf-8"))


def bin_get_fairshare_by_id(rid: int, gen: int, leaf_id: int) -> bytes:
    return bin_request(BOP_GET_FAIRSHARE, rid, BIN_BY_ID.pack(gen, leaf_id),
                       flags=BF_BY_ID)


def bin_get_vector_by_name(rid: int, user: str) -> bytes:
    return bin_request(BOP_GET_VECTOR, rid, user.encode("utf-8"))


def bin_get_vector_by_id(rid: int, gen: int, leaf_id: int) -> bytes:
    return bin_request(BOP_GET_VECTOR, rid, BIN_BY_ID.pack(gen, leaf_id),
                       flags=BF_BY_ID)


def bin_report_usage(rid: int, user: str, start: float, end: float,
                     cores: int) -> bytes:
    return bin_request(BOP_REPORT_USAGE, rid,
                       BIN_REPORT.pack(start, end, cores)
                       + user.encode("utf-8"))


def bin_batch_fairshare(rid: int, gen: int, leaf_ids: list) -> bytes:
    """Batch lookup by id; every id must be from the same generation."""
    body = BIN_BATCH_HEAD.pack(gen, len(leaf_ids)) + \
        struct.pack(">%dI" % len(leaf_ids), *leaf_ids)
    return bin_request(BOP_BATCH_FAIRSHARE, rid, body, flags=BF_BY_ID)


def bin_ping(rid: int) -> bytes:
    return bin_request(BOP_PING, rid)


async def read_bin_reply(reader: asyncio.StreamReader,
                         max_frame: int = MAX_FRAME_BYTES):
    """Read one binary reply frame: ``(status, flags, rid, body)``.

    Test/diagnostic helper — the production client parses replies out of
    its buffered read loop instead.
    """
    try:
        header = await reader.readexactly(BIN_HEADER.size)
    except (asyncio.IncompleteReadError, ConnectionResetError) as exc:
        raise ConnectionClosed("eof") from exc
    magic, status, flags, rid, body_len = BIN_HEADER.unpack(header)
    if magic != BIN_REP_MAGIC:
        raise MalformedFrame(f"bad reply magic 0x{magic:02x}")
    if body_len > max_frame:
        raise FrameTooLarge(body_len, max_frame)
    try:
        body = await reader.readexactly(body_len)
    except (asyncio.IncompleteReadError, ConnectionResetError) as exc:
        raise ConnectionClosed("truncated frame") from exc
    return status, flags, rid, body
