"""aequusd wire protocol: versioned, length-prefixed JSON frames.

A frame is a 4-byte big-endian payload length followed by that many bytes
of UTF-8 JSON.  Both directions use the same framing; the JSON payload is
always a single object.

Requests carry ``{"v": <protocol version>, "id": <correlation id>,
"op": "<OP>", ...operands}``.  Replies echo ``id`` and carry either
``"ok": true`` plus result fields, or ``"ok": false`` plus a structured
``"error": {"code": "<CODE>", "message": "<human text>"}``.  Correlation
ids let a pipelining client match replies to requests without assuming
ordering (the server does reply in order, but the contract is the id).

Operations
----------
``GET_FAIRSHARE``     ``user`` -> ``value`` (projected scalar), ``known``,
                      ``seq``/``epoch`` of the serving snapshot.  With
                      ``"horizons": true`` the reply adds ``horizons``
                      (per-origin usage watermark the snapshot
                      incorporates) and ``staleness`` (its age now).
``GET_VECTOR``        ``user`` -> ``elements`` + ``resolution``.
``RESOLVE_IDENTITY``  ``user`` (system user) -> ``identity``.
``REPORT_USAGE``      ``user``/``start``/``end``/``cores`` -> ``accepted``.
``BATCH``             ``requests``: list of request objects (no nesting);
                      reply carries ``replies`` in the same order, all
                      served from ONE snapshot (no torn batches).
``PING``              liveness probe; echoes ``payload`` if present.
``INFO``              server, snapshot, and statistics summary.
``METRICS``           Prometheus text exposition of every registry wired
                      into the server (server, FCS, USS/UMS, network) as
                      ``text``; scrape with ``aequus-repro metrics``.

The frame length prefix is validated against a configurable cap before the
payload is read, so an adversarial or broken peer cannot make the server
buffer an arbitrarily large frame.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, Optional

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "HEADER",
    "OPS",
    "ERR_MALFORMED",
    "ERR_BAD_VERSION",
    "ERR_UNSUPPORTED_OP",
    "ERR_UNKNOWN_USER",
    "ERR_NOT_A_LEAF",
    "ERR_OVERSIZED",
    "ERR_BAD_BATCH",
    "ERR_INTERNAL",
    "ProtocolError",
    "MalformedFrame",
    "FrameTooLarge",
    "ConnectionClosed",
    "encode_frame",
    "decode_payload",
    "read_frame",
    "error_reply",
    "ok_reply",
]

#: bump on any incompatible frame or payload change
PROTOCOL_VERSION = 1

#: default cap on a single frame's payload size (1 MiB)
MAX_FRAME_BYTES = 1 << 20

#: 4-byte big-endian unsigned payload length
HEADER = struct.Struct(">I")

OPS = frozenset({"GET_FAIRSHARE", "GET_VECTOR", "RESOLVE_IDENTITY",
                 "REPORT_USAGE", "BATCH", "PING", "INFO", "METRICS"})

# -- structured error codes ---------------------------------------------------

ERR_MALFORMED = "MALFORMED"          # frame payload is not a valid request
ERR_BAD_VERSION = "BAD_VERSION"      # protocol version mismatch
ERR_UNSUPPORTED_OP = "UNSUPPORTED_OP"
ERR_UNKNOWN_USER = "UNKNOWN_USER"    # identity cannot be resolved
ERR_NOT_A_LEAF = "NOT_A_LEAF"        # vector requested for a non-leaf node
ERR_OVERSIZED = "OVERSIZED"          # frame exceeded the size cap
ERR_BAD_BATCH = "BAD_BATCH"          # malformed or nested batch
ERR_INTERNAL = "INTERNAL"


class ProtocolError(Exception):
    """Base class for framing-level failures."""


class MalformedFrame(ProtocolError):
    """The payload bytes are not valid UTF-8 JSON, or not an object."""


class FrameTooLarge(ProtocolError):
    """The declared payload length exceeds the configured cap."""

    def __init__(self, declared: int, limit: int):
        super().__init__(f"frame of {declared} bytes exceeds cap {limit}")
        self.declared = declared
        self.limit = limit


class ConnectionClosed(ProtocolError):
    """The peer closed the connection (cleanly or mid-frame)."""


# -- framing ------------------------------------------------------------------

def encode_frame(payload: Dict[str, Any]) -> bytes:
    """Serialize one payload object into a length-prefixed frame."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return HEADER.pack(len(body)) + body


def decode_payload(body: bytes) -> Dict[str, Any]:
    """Parse a frame body; raises :class:`MalformedFrame` on garbage."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise MalformedFrame(str(exc)) from exc
    if not isinstance(payload, dict):
        raise MalformedFrame(f"payload is {type(payload).__name__}, "
                             "expected an object")
    return payload


async def read_frame(reader: asyncio.StreamReader,
                     max_frame: int = MAX_FRAME_BYTES) -> Dict[str, Any]:
    """Read one frame; the length prefix is validated before the payload.

    Raises :class:`ConnectionClosed` at a clean EOF between frames or a
    truncation mid-frame, :class:`FrameTooLarge` when the declared length
    exceeds ``max_frame`` (the payload is NOT read in that case), and
    :class:`MalformedFrame` for undecodable payloads.
    """
    try:
        header = await reader.readexactly(HEADER.size)
    except (asyncio.IncompleteReadError, ConnectionResetError) as exc:
        raise ConnectionClosed("eof") from exc
    (length,) = HEADER.unpack(header)
    if length > max_frame:
        raise FrameTooLarge(length, max_frame)
    try:
        body = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionResetError) as exc:
        raise ConnectionClosed("truncated frame") from exc
    return decode_payload(body)


# -- reply builders -----------------------------------------------------------

def ok_reply(request_id: Optional[int], **fields: Any) -> Dict[str, Any]:
    reply: Dict[str, Any] = {"id": request_id, "ok": True}
    reply.update(fields)
    return reply


def error_reply(request_id: Optional[int], code: str,
                message: str) -> Dict[str, Any]:
    return {"id": request_id, "ok": False,
            "error": {"code": code, "message": message}}
