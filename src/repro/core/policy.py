"""Hierarchical, tree-based usage policies (paper Section II-A).

A policy tree defines the *target* usage share of every user, project, or
virtual organization (VO) in the system.  Shares are specified as arbitrary
positive weights on each node and normalized within each sibling group, so
``{a: 3, b: 1}`` means *a* is entitled to 75% and *b* to 25% of whatever
their parent is entitled to.

The distinguishing Aequus feature is *mounting*: globally managed
sub-policies can be dynamically attached under a locally administered root
node.  A site administrator allocates, say, 30% of the cluster to a grid VO
and mounts the VO's own policy subtree (fetched from a remote Policy
Distribution Service) at that point — retaining full local control over the
top of the tree while delegating the subdivision.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Union

from .tree import Tree, TreeNode, split_path

__all__ = ["PolicyNode", "PolicyTree", "PolicyEdit", "parse_policy",
           "PolicyError"]


class PolicyError(ValueError):
    """Raised for malformed policy definitions."""


@dataclass(frozen=True)
class PolicyEdit:
    """One journaled policy mutation (DESIGN.md §12).

    ``kind``
        ``"weight"`` — the node at ``path`` changed its weight;
        ``"add"`` — a new node appeared at ``path`` (``weight`` holds the
        creation weight, in case the node is later removed again);
        ``"remove"`` — the subtree at ``path`` disappeared;
        ``"replace"`` — the node at ``path`` replaced its entire child set
        (mount / refresh_mount / unmount).

    Replaying an edit always reconciles ``path`` against the *current* live
    tree, so applying a journal suffix is idempotent and insensitive to
    intermediate states the consumer never saw (add-then-remove collapses
    to a tombstoned row, stale weights resolve to the live value).
    """

    kind: str
    path: str
    weight: float = 1.0


#: distinguishes journals of different PolicyTree instances: a consumer
#: that cached edits-position state for one tree must full-compile when
#: handed another (same-revision numbers mean nothing across trees)
_journal_tokens = itertools.count(1)


class PolicyNode(TreeNode):
    """A policy-tree node carrying a share weight.

    ``weight``
        Raw share weight as configured (any positive number).
    ``mounted_from``
        Identifier of the remote source if this subtree was mounted, else
        ``None``.  Mounted subtrees are re-fetched periodically by the PDS;
        the flag lets the refresh replace exactly the mounted part.
    """

    __slots__ = ("weight", "mounted_from")

    def __init__(self, name: str, weight: float = 1.0,
                 parent: Optional["PolicyNode"] = None,
                 mounted_from: Optional[str] = None):
        super().__init__(name, parent)
        if weight <= 0:
            raise PolicyError(f"share weight must be positive, got {weight} for {name!r}")
        self.weight = float(weight)
        self.mounted_from = mounted_from

    @property
    def normalized_share(self) -> float:
        """This node's share of its parent: weight / sum of sibling weights."""
        if self.parent is None:
            return 1.0
        total = sum(c.weight for c in self.parent.children.values())  # type: ignore[attr-defined]
        return self.weight / total

    @property
    def total_share(self) -> float:
        """Absolute target share of the whole system (product down the path).

        This is the quantity the *percental* projection uses: e.g. a project
        share of 0.20 and a user share of 0.25 yield a total share of 0.05
        (paper Section III-C).
        """
        share = 1.0
        node: Optional[PolicyNode] = self
        while node is not None and node.parent is not None:
            share *= node.normalized_share
            node = node.parent  # type: ignore[assignment]
        return share


class PolicyTree(Tree):
    """Tree of :class:`PolicyNode` with mounting and (de)serialization."""

    node_class = PolicyNode
    root: PolicyNode

    #: journal entries kept; consumers further behind fall back to a full
    #: recompile (bounds journal memory regardless of edit rate)
    JOURNAL_LIMIT = 1024

    def __init__(self, root: Optional[PolicyNode] = None):
        super().__init__(root if root is not None else PolicyNode(""))
        #: bumped by every mutating method; consumers (the FCS) use it to
        #: detect policy epochs without re-walking the tree.  Direct node
        #: attribute writes bypass it — mutate via the tree methods.
        self.revision = 0
        #: identifies this tree's journal; revision numbers only line up
        #: within one token (``PDS.set_policy`` swaps the whole tree)
        self.journal_token = next(_journal_tokens)
        #: ``(revision, edit)`` records, oldest first; every mutating tree
        #: method appends here so :meth:`edits_since` can hand an
        #: incremental compiler exactly what changed
        self._journal: List[Tuple[int, PolicyEdit]] = []
        #: highest revision whose edits have been dropped from the journal
        self._journal_floor = 0

    # -- edit journal ------------------------------------------------------

    def _record(self, *edits: PolicyEdit) -> None:
        """Commit one mutation: bump the revision, journal its edits."""
        self.revision += 1
        for edit in edits:
            self._journal.append((self.revision, edit))
        overflow = len(self._journal) - self.JOURNAL_LIMIT
        if overflow > 0:
            self._journal_floor = self._journal[overflow - 1][0]
            del self._journal[:overflow]

    def edits_since(self, revision: int) -> Optional[List[PolicyEdit]]:
        """Edits recorded after ``revision``, oldest first.

        Returns ``None`` when the journal cannot answer exactly — the
        consumer is behind the retention floor (or ahead of this tree,
        i.e. holding state from a different tree) and must recompile from
        scratch.
        """
        if revision < self._journal_floor or revision > self.revision:
            return None
        return [edit for rev, edit in self._journal if rev > revision]

    def _ensure_recorded(self, path: str) -> Tuple[PolicyNode, List[PolicyEdit]]:
        """``ensure_path`` that collects an ``add`` edit per created node."""
        node = self.root
        created: List[PolicyEdit] = []
        for part in split_path(path):
            nxt = node.children.get(part)
            if nxt is None:
                nxt = node.add_child(PolicyNode(part))
                created.append(PolicyEdit("add", nxt.path,
                                          nxt.weight))  # type: ignore[attr-defined]
            node = nxt
        return node, created  # type: ignore[return-value]

    # -- construction --------------------------------------------------

    @classmethod
    def from_dict(cls, spec: Dict[str, Union[float, dict, tuple]]) -> "PolicyTree":
        """Build a policy tree from a nested mapping.

        Leaf values are weights; nested dicts create subgroups.  A tuple
        ``(weight, subdict)`` gives an internal node an explicit weight::

            PolicyTree.from_dict({
                "local": 70,
                "grid": (30, {"projA": 3, "projB": 1}),
            })
        """
        tree = cls()

        def build(parent: PolicyNode, mapping: Dict[str, Union[float, dict, tuple]]) -> None:
            for name, value in mapping.items():
                if isinstance(value, tuple):
                    weight, sub = value
                    node = parent.add_child(PolicyNode(name, weight))
                    build(node, sub)  # type: ignore[arg-type]
                elif isinstance(value, dict):
                    node = parent.add_child(PolicyNode(name, 1.0))
                    build(node, value)
                else:
                    parent.add_child(PolicyNode(name, float(value)))

        build(tree.root, spec)
        return tree

    def set_share(self, path: str, weight: float) -> PolicyNode:
        """Create or update the node at ``path`` with the given weight."""
        if weight <= 0:
            raise PolicyError(f"share weight must be positive, got {weight}")
        node, created = self._ensure_recorded(path)
        node.weight = float(weight)
        if created:
            # the final add edit carries the effective weight
            created[-1] = PolicyEdit("add", node.path, node.weight)
            self._record(*created)
        else:
            self._record(PolicyEdit("weight", node.path, node.weight))
        return node

    def remove_path(self, path: str) -> PolicyNode:
        """Remove the subtree at ``path`` (run-time policy change)."""
        node = self.find(path)
        if node is None or node.parent is None:
            raise PolicyError(f"cannot remove {path!r}")
        node.parent.remove_child(node.name)
        self._record(PolicyEdit("remove", path))
        return node  # type: ignore[return-value]

    # -- queries ---------------------------------------------------------

    def share_vector(self, path: str) -> List[float]:
        """Normalized shares along the path root -> leaf."""
        node = self[path]
        return [n.normalized_share for n in node.path_from_root()]  # type: ignore[attr-defined]

    def total_share(self, path: str) -> float:
        node = self[path]
        return node.total_share  # type: ignore[attr-defined]

    def user_paths(self) -> List[str]:
        return self.leaf_paths()

    # -- mounting ----------------------------------------------------------

    def mount(self, mount_point: str, subtree: "PolicyTree", source: str,
              weight: Optional[float] = None) -> PolicyNode:
        """Mount a remote sub-policy under ``mount_point``.

        The children of ``subtree``'s root become children of the mount
        point.  ``source`` identifies the remote origin so a later
        :meth:`refresh_mount` or :meth:`unmount` affects exactly this
        subtree.  If ``weight`` is given, the mount point's own weight is
        updated (the local administrator decides how much of the local
        resources the mounted policy receives).
        """
        node, created = self._ensure_recorded(mount_point)
        if node.children:
            if created:
                self._record(*created)
            raise PolicyError(f"mount point {mount_point!r} already has children")
        if weight is not None:
            node.weight = float(weight)
        if created:
            created[-1] = PolicyEdit("add", node.path, node.weight)
        node.mounted_from = source
        self._graft(node, subtree.root, source)  # type: ignore[arg-type]
        # a single replace edit covers the grafted children and the mount
        # point's own (possibly updated) weight: replay reads the live tree
        self._record(*created, PolicyEdit("replace", node.path, node.weight))
        return node

    def _graft(self, target: PolicyNode, source_root: PolicyNode, source: str) -> None:
        for child in source_root.children.values():
            copy = PolicyNode(child.name, child.weight, mounted_from=source)  # type: ignore[attr-defined]
            target.add_child(copy)
            self._graft(copy, child, source)  # type: ignore[arg-type]

    @staticmethod
    def _same_structure(node: PolicyNode, other: PolicyNode) -> bool:
        """Structural identity: same child names (in order) and weights."""
        if list(node.children) != list(other.children):
            return False
        for mine, theirs in zip(node.children.values(),
                                other.children.values()):
            if mine.weight != theirs.weight:  # type: ignore[attr-defined]
                return False
            if not PolicyTree._same_structure(mine, theirs):  # type: ignore[arg-type]
                return False
        return True

    def refresh_mount(self, mount_point: str, subtree: "PolicyTree") -> bool:
        """Replace a previously mounted subtree with a fresh copy.

        Models the PDS periodically re-fetching remote sub-policies; policy
        changes at the remote administration propagate without touching the
        locally managed part of the tree.  A re-fetch that is structurally
        identical to what is already mounted is a no-op: the revision does
        not move, so downstream caches (the FCS compile, the serve plane's
        leaf-id generation) survive idle mount refreshes.  Returns whether
        the tree actually changed.
        """
        node = self.find(mount_point)
        if node is None or node.mounted_from is None:  # type: ignore[attr-defined]
            raise PolicyError(f"{mount_point!r} is not a mount point")
        if self._same_structure(node, subtree.root):  # type: ignore[arg-type]
            return False
        source = node.mounted_from  # type: ignore[attr-defined]
        for name in list(node.children):
            node.remove_child(name)
        self._graft(node, subtree.root, source)  # type: ignore[arg-type]
        self._record(PolicyEdit("replace", node.path,
                                node.weight))  # type: ignore[attr-defined]
        return True

    def unmount(self, mount_point: str) -> None:
        node = self.find(mount_point)
        if node is None or node.mounted_from is None:  # type: ignore[attr-defined]
            raise PolicyError(f"{mount_point!r} is not a mount point")
        for name in list(node.children):
            node.remove_child(name)
        node.mounted_from = None  # type: ignore[attr-defined]
        self._record(PolicyEdit("replace", node.path,
                                node.weight))  # type: ignore[attr-defined]

    def mount_points(self) -> List[str]:
        return [n.path for n in self.walk()
                if n.mounted_from is not None and (n.parent is None or n.parent.mounted_from is None)]  # type: ignore[attr-defined]

    # -- (de)serialization -------------------------------------------------

    def to_lines(self) -> List[str]:
        """Serialize to ``path = weight`` lines (the PDS wire format)."""
        lines = []
        for node in self.walk():
            if node.parent is None:
                continue
            # repr() is the shortest exact float representation: policies
            # must round-trip through the wire format without drift
            lines.append(f"{node.path} = {node.weight!r}")  # type: ignore[attr-defined]
        return lines

    def dumps(self) -> str:
        return "\n".join(self.to_lines()) + "\n"

    def copy(self) -> "PolicyTree":
        """Deep structural copy (mount provenance preserved)."""
        new = PolicyTree()

        def dup(src: PolicyNode, dst: PolicyNode) -> None:
            for child in src.children.values():
                node = PolicyNode(child.name, child.weight, mounted_from=child.mounted_from)  # type: ignore[attr-defined]
                dst.add_child(node)
                dup(child, node)  # type: ignore[arg-type]

        dup(self.root, new.root)
        return new

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PolicyTree):
            return NotImplemented
        mine = {n.path: n.weight for n in self.walk() if n.parent}  # type: ignore[attr-defined]
        theirs = {n.path: n.weight for n in other.walk() if n.parent}  # type: ignore[attr-defined]
        return mine == theirs

    __hash__ = None  # type: ignore[assignment]


def parse_policy(text: str) -> PolicyTree:
    """Parse the ``path = weight`` policy text format.

    Lines starting with ``#`` and blank lines are ignored.  Intermediate
    nodes named only as prefixes of other paths get weight 1 unless given
    their own line (order does not matter).
    """
    tree = PolicyTree()
    assignments: List[Tuple[str, float]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if "=" not in line:
            raise PolicyError(f"line {lineno}: expected 'path = weight', got {line!r}")
        path, _, value = line.partition("=")
        path = path.strip()
        if not split_path(path):
            raise PolicyError(f"line {lineno}: cannot assign a weight to the root")
        try:
            weight = float(value.strip())
        except ValueError as exc:
            raise PolicyError(f"line {lineno}: bad weight {value.strip()!r}") from exc
        assignments.append((path, weight))
    for path, weight in assignments:
        tree.ensure_path(path)
    for path, weight in assignments:
        tree.set_share(path, weight)
    return tree
