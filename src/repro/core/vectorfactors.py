"""Vector-combinable job factors (paper Section III-C, future work).

The paper notes that no projection of fairshare vectors to a single float
keeps all vector properties, and sketches the planned alternative: "reverse
the problem and instead investigate modeling other factors, such as job
age, using a representation combinable with the fairshare vectors."

This module implements that idea.  A :class:`VectorFactor` maps a job to a
normalized score in ``[0, 1]``; a :class:`CompositeVectorPriority` appends
(or blends) factor scores into the job's fairshare vector, producing an
*extended vector* that is still compared lexicographically — so the
combined priority keeps arbitrary depth, unlimited precision, and subgroup
isolation, which no scalar projection achieves (Table I).

Two combination placements are supported:

``suffix``
    Factor elements are appended *below* the fairshare levels: fairshare
    dominates, and job age only breaks ties between users at equal
    fairshare balance — strict top-down enforcement.
``blend``
    Every fairshare element is blended with the factor score using the
    factor's weight, mirroring the linear multifactor combination while
    staying in vector space (smoothing with impact relative to weight).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..rms.job import Job
from .vector import FairshareVector

__all__ = [
    "VectorFactor",
    "AgeVectorFactor",
    "QosVectorFactor",
    "JobSizeVectorFactor",
    "CompositeVectorPriority",
]


class VectorFactor:
    """A job attribute normalized to ``[0, 1]`` for vector combination."""

    name = "abstract"

    def score(self, job: Job, now: float) -> float:
        raise NotImplementedError

    def _check(self, value: float) -> float:
        return min(max(value, 0.0), 1.0)


class AgeVectorFactor(VectorFactor):
    """Job age, saturating at ``max_age`` (like the multifactor age term)."""

    name = "age"

    def __init__(self, max_age: float = 3600.0):
        if max_age <= 0:
            raise ValueError("max_age must be positive")
        self.max_age = max_age

    def score(self, job: Job, now: float) -> float:
        return self._check(job.wait_time(now) / self.max_age)


class QosVectorFactor(VectorFactor):
    """The job's quality-of-service level (already in [0, 1])."""

    name = "qos"

    def score(self, job: Job, now: float) -> float:
        return self._check(job.qos)


class JobSizeVectorFactor(VectorFactor):
    """Small-job preference: ``1 - (cores - 1) / total_cores``."""

    name = "job_size"

    def __init__(self, total_cores: int):
        if total_cores < 1:
            raise ValueError("total_cores must be >= 1")
        self.total_cores = total_cores

    def score(self, job: Job, now: float) -> float:
        return self._check(1.0 - (job.cores - 1) / self.total_cores)


class CompositeVectorPriority:
    """Combine a fairshare vector with job factors, in vector space.

    ``mode='suffix'`` appends one element per factor below the fairshare
    levels; ``mode='blend'`` mixes the factor blend into every fairshare
    element with total factor weight ``factor_weight``.
    """

    def __init__(self, factors: Sequence[Tuple[float, VectorFactor]],
                 mode: str = "suffix",
                 factor_weight: float = 0.5):
        if mode not in ("suffix", "blend"):
            raise ValueError(f"unknown combination mode {mode!r}")
        if not 0.0 <= factor_weight < 1.0:
            raise ValueError("factor_weight must lie in [0, 1)")
        weights = [w for w, _ in factors]
        if any(w < 0 for w in weights):
            raise ValueError("factor weights must be non-negative")
        if factors and sum(weights) <= 0:
            raise ValueError("factor weights must sum to a positive value")
        self.factors: List[Tuple[float, VectorFactor]] = list(factors)
        self.mode = mode
        self.factor_weight = factor_weight

    def factor_blend(self, job: Job, now: float) -> float:
        """The weighted mean of all factor scores in [0, 1]."""
        if not self.factors:
            return 0.5
        total = sum(w for w, _ in self.factors)
        return sum(w * f.score(job, now) for w, f in self.factors) / total

    def extend(self, vector: FairshareVector, job: Job, now: float) -> FairshareVector:
        """The combined, still-lexicographic priority vector for ``job``."""
        if self.mode == "suffix":
            extra = [f.score(job, now) * vector.resolution
                     for _, f in self.factors]
            return FairshareVector(list(vector.elements) + extra,
                                   vector.resolution)
        blend = self.factor_blend(job, now) * vector.resolution
        w = self.factor_weight
        mixed = [(1.0 - w) * e + w * blend for e in vector.elements]
        return FairshareVector(mixed, vector.resolution)

    def rank(self, entries: Mapping[int, Tuple[FairshareVector, Job]],
             now: float) -> List[int]:
        """Job ids ordered best-first by extended-vector comparison."""
        extended = {job_id: self.extend(vec, job, now)
                    for job_id, (vec, job) in entries.items()}
        return sorted(extended, key=lambda jid: extended[jid], reverse=True)
