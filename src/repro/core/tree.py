"""Generic share-tree structure underlying policy, usage, and fairshare trees.

Aequus organizes all share information as trees: an entity hierarchy rooted
at the installation (site or grid), subdivided into groups, subgroups, and
users (paper Section II-A and Figure 3).  This module provides the common
node/tree machinery those trees share: named children, slash-separated
paths, traversal, and structural merging.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

__all__ = ["TreeNode", "Tree", "split_path", "join_path"]


def split_path(path: str) -> List[str]:
    """Split a slash-separated path into components.

    ``"/HPC/LQ/u1"`` -> ``["HPC", "LQ", "u1"]``.  The root is addressed by
    ``"/"`` (empty component list).
    """
    path = path.strip()
    if path in ("", "/"):
        return []
    return [part for part in path.strip("/").split("/") if part]


def join_path(parts: List[str]) -> str:
    """Inverse of :func:`split_path`: ``["HPC", "u1"]`` -> ``"/HPC/u1"``."""
    return "/" + "/".join(parts)


class TreeNode:
    """A named node in a share tree.

    Children are kept in insertion order (deterministic traversal matters
    for reproducible simulation output).  Subclasses add per-node payloads
    such as policy shares or usage sums.
    """

    __slots__ = ("name", "parent", "children")

    def __init__(self, name: str, parent: Optional["TreeNode"] = None):
        if "/" in name:
            raise ValueError(f"node name may not contain '/': {name!r}")
        self.name = name
        self.parent = parent
        self.children: Dict[str, TreeNode] = {}

    # -- structure ---------------------------------------------------------

    @property
    def is_root(self) -> bool:
        return self.parent is None

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def depth(self) -> int:
        """Distance from the root (root has depth 0)."""
        node, d = self, 0
        while node.parent is not None:
            node = node.parent
            d += 1
        return d

    @property
    def path(self) -> str:
        """Slash-separated path from the root down to this node."""
        parts: List[str] = []
        node: Optional[TreeNode] = self
        while node is not None and node.parent is not None:
            parts.append(node.name)
            node = node.parent
        return join_path(list(reversed(parts)))

    def add_child(self, child: "TreeNode") -> "TreeNode":
        if child.name in self.children:
            raise ValueError(f"duplicate child {child.name!r} under {self.path}")
        child.parent = self
        self.children[child.name] = child
        return child

    def remove_child(self, name: str) -> "TreeNode":
        child = self.children.pop(name)
        child.parent = None
        return child

    def child(self, name: str) -> "TreeNode":
        return self.children[name]

    # -- traversal ---------------------------------------------------------

    def walk(self) -> Iterator["TreeNode"]:
        """Pre-order traversal of the subtree rooted at this node."""
        stack: List[TreeNode] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(list(node.children.values())))

    def leaves(self) -> Iterator["TreeNode"]:
        for node in self.walk():
            if node.is_leaf:
                yield node

    def ancestors(self) -> Iterator["TreeNode"]:
        """Ancestors from the immediate parent up to (and including) the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def path_from_root(self) -> List["TreeNode"]:
        """Nodes on the path root -> ... -> this node (root excluded)."""
        nodes = [self] + list(self.ancestors())
        nodes = [n for n in reversed(nodes) if n.parent is not None]
        return nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.path or '/'}>"


class Tree:
    """A tree of :class:`TreeNode` (or subclass) with path-based access."""

    node_class = TreeNode

    def __init__(self, root: Optional[TreeNode] = None):
        self.root = root if root is not None else self.node_class("")

    def find(self, path: str) -> Optional[TreeNode]:
        """Return the node at ``path`` or ``None`` if absent."""
        node = self.root
        for part in split_path(path):
            nxt = node.children.get(part)
            if nxt is None:
                return None
            node = nxt
        return node

    def __getitem__(self, path: str) -> TreeNode:
        node = self.find(path)
        if node is None:
            raise KeyError(path)
        return node

    def __contains__(self, path: str) -> bool:
        return self.find(path) is not None

    def ensure_path(self, path: str, factory: Optional[Callable[[str], TreeNode]] = None) -> TreeNode:
        """Return the node at ``path``, creating intermediate nodes as needed."""
        make = factory or (lambda name: self.node_class(name))
        node = self.root
        for part in split_path(path):
            nxt = node.children.get(part)
            if nxt is None:
                nxt = node.add_child(make(part))
            node = nxt
        return node

    def walk(self) -> Iterator[TreeNode]:
        return self.root.walk()

    def leaves(self) -> Iterator[TreeNode]:
        return self.root.leaves()

    def leaf_paths(self) -> List[str]:
        return [leaf.path for leaf in self.leaves()]

    def size(self) -> int:
        return sum(1 for _ in self.walk())

    def render(self, label: Optional[Callable[[TreeNode], str]] = None) -> str:
        """ASCII rendering of the tree, one node per line (for docs/logs)."""
        label = label or (lambda n: n.name or "/")
        lines: List[str] = []

        def visit(node: TreeNode, indent: int) -> None:
            lines.append("  " * indent + label(node))
            for child in node.children.values():
                visit(child, indent + 1)

        visit(self.root, 0)
        return "\n".join(lines)
