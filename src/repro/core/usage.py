"""Usage accounting: per-job records, per-user histograms, usage trees.

Mirrors the data side of the Aequus pipeline (paper Section II-A):

* a :class:`UsageRecord` is what a resource manager reports when a job
  completes (via the job-completion plugin and ``libaequus``);
* the Usage Statistics Service aggregates records into per-user
  :class:`UsageHistogram` bins of a configurable interval — the *compact
  form* exchanged between sites ("relaying the combined usage of each user
  on each site while omitting the details of individual jobs");
* a :class:`UsageTree` mirrors the policy-tree structure with decayed
  per-node usage, ready for the fairshare calculation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from .decay import DecayFunction, NoDecay
from .tree import Tree, TreeNode

__all__ = ["UsageRecord", "UsageHistogram", "UsageNode", "UsageTree", "build_usage_tree"]


@dataclass(frozen=True)
class UsageRecord:
    """Resource consumption of one completed job.

    ``user`` is a *grid identity* (identity resolution has already happened
    by the time a record reaches the USS).  ``charge`` is measured in
    core-seconds; for the single-core bag-of-task jobs in the paper's trace
    it equals the wall-clock duration.
    """

    user: str
    site: str
    start: float
    end: float
    cores: int = 1

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"job ends before it starts: {self.start} > {self.end}")
        if self.cores < 1:
            raise ValueError("cores must be >= 1")

    @property
    def charge(self) -> float:
        """Core-seconds consumed."""
        return (self.end - self.start) * self.cores


class UsageHistogram:
    """Per-user usage aggregated into fixed time intervals.

    Bin ``i`` covers ``[i * interval, (i+1) * interval)``.  A job's charge is
    split proportionally across the bins its runtime overlaps, so totals are
    conserved regardless of binning (a property test guards this).

    Consumers that need to know *what changed* (the USS delta exchange, the
    incremental UMS refresh) register a **change cursor**: every mutation of
    a ``(user, bin)`` entry is recorded against all registered cursors, and
    :meth:`drain_cursor` hands back (and resets) the accumulated dirty set.
    When no cursor is registered, mutations pay a single truthiness check.
    """

    def __init__(self, interval: float = 3600.0):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = float(interval)
        self._bins: Dict[str, Dict[int, float]] = {}
        #: cursor id -> {user -> set of dirty bin indexes since last drain}
        self._cursors: Dict[int, Dict[str, Set[int]]] = {}
        self._cursor_ids = itertools.count()

    # -- change tracking ---------------------------------------------------

    def register_cursor(self) -> int:
        """Start tracking mutations; returns a cursor id for draining."""
        cursor = next(self._cursor_ids)
        self._cursors[cursor] = {}
        return cursor

    def drain_cursor(self, cursor: int) -> Dict[str, Set[int]]:
        """Dirty ``user -> bins`` accumulated since the last drain; resets."""
        dirty = self._cursors[cursor]
        self._cursors[cursor] = {}
        return dirty

    def release_cursor(self, cursor: int) -> None:
        self._cursors.pop(cursor, None)

    def _mark(self, user: str, bin_index: int) -> None:
        for pending in self._cursors.values():
            pending.setdefault(user, set()).add(bin_index)

    def _mark_all_of(self, user: str, bins: Iterable[int]) -> None:
        bins = set(bins)
        for pending in self._cursors.values():
            pending.setdefault(user, set()).update(bins)

    # -- recording ---------------------------------------------------------

    def add_record(self, record: UsageRecord) -> None:
        self.add_charge(record.user, record.start, record.end, record.cores)

    def add_charge(self, user: str, start: float, end: float, cores: int = 1) -> None:
        """Distribute ``cores * (end - start)`` across overlapped bins."""
        if end < start:
            raise ValueError("end < start")
        if end == start:
            return
        user_bins = self._bins.setdefault(user, {})
        first = int(start // self.interval)
        last = int(end // self.interval)
        for b in range(first, last + 1):
            lo = max(start, b * self.interval)
            hi = min(end, (b + 1) * self.interval)
            if hi > lo:
                user_bins[b] = user_bins.get(b, 0.0) + (hi - lo) * cores
                if self._cursors:
                    self._mark(user, b)

    def add_bin(self, user: str, bin_index: int, charge: float) -> None:
        """Merge a pre-aggregated bin (used when ingesting remote usage)."""
        if charge < 0:
            raise ValueError("charge must be non-negative")
        if charge == 0:
            return
        user_bins = self._bins.setdefault(user, {})
        user_bins[bin_index] = user_bins.get(bin_index, 0.0) + charge
        if self._cursors:
            self._mark(user, bin_index)

    def set_bin(self, user: str, bin_index: int, charge: float) -> None:
        """Overwrite a bin with an absolute value; ``charge == 0`` deletes.

        This is the receiving end of the delta exchange: senders transmit
        *current bin values* (not increments), so applying an entry twice —
        or applying a later full snapshot over it — is idempotent.
        """
        if charge < 0:
            raise ValueError("charge must be non-negative")
        if charge == 0:
            user_bins = self._bins.get(user)
            if user_bins is None or bin_index not in user_bins:
                return
            del user_bins[bin_index]
            if not user_bins:
                del self._bins[user]
        else:
            self._bins.setdefault(user, {})[bin_index] = charge
        if self._cursors:
            self._mark(user, bin_index)

    # -- queries ----------------------------------------------------------

    @property
    def users(self) -> List[str]:
        return sorted(self._bins)

    def has_user(self, user: str) -> bool:
        return user in self._bins

    def user_bins(self, user: str) -> Dict[int, float]:
        return dict(self._bins.get(user, {}))

    def bin_value(self, user: str, bin_index: int) -> float:
        """Current value of one bin (0.0 when absent)."""
        return self._bins.get(user, {}).get(bin_index, 0.0)

    def newest_midpoint(self, user: str) -> Optional[float]:
        """Midpoint time of the user's newest bin (None if unknown).

        The incremental UMS uses this to decide whether a user's decayed
        total can be age-shifted analytically: that is exact only once every
        bin midpoint lies in the past of the previous refresh.
        """
        bins = self._bins.get(user)
        if not bins:
            return None
        return (max(bins) + 0.5) * self.interval

    def newest_midpoints(self) -> Dict[str, float]:
        """``newest_midpoint`` for every user in one pass."""
        return {u: (max(b) + 0.5) * self.interval
                for u, b in self._bins.items() if b}

    def total(self, user: Optional[str] = None) -> float:
        if user is not None:
            return sum(self._bins.get(user, {}).values())
        return sum(sum(b.values()) for b in self._bins.values())

    def decayed_total(self, user: str, now: float,
                      decay: Optional[DecayFunction] = None) -> float:
        """Usage of ``user`` with ``decay`` applied at bin midpoints."""
        decay = decay or NoDecay()
        bins = self._bins.get(user)
        if not bins:
            return 0.0
        idx = np.fromiter(bins.keys(), dtype=float)
        amounts = np.fromiter(bins.values(), dtype=float)
        midpoints = (idx + 0.5) * self.interval
        ages = np.maximum(now - midpoints, 0.0)
        return float(np.dot(amounts, decay.weights(ages)))

    def decayed_totals(self, now: float,
                       decay: Optional[DecayFunction] = None) -> Dict[str, float]:
        """Decayed usage of every user in one vectorized pass.

        All (user, bin) entries are flattened into parallel arrays so the
        decay weights for the whole histogram are a single ``ages × amounts``
        operation followed by a per-user segmented sum, instead of one
        ``decayed_sum`` call per user (the UMS refresh hot path).
        """
        decay = decay or NoDecay()
        users = list(self._bins)
        if not users:
            return {}
        counts = np.fromiter((len(self._bins[u]) for u in users),
                             dtype=np.int64, count=len(users))
        total = int(counts.sum())
        if total == 0:
            return {u: 0.0 for u in users}
        idx = np.fromiter((b for u in users for b in self._bins[u]),
                          dtype=np.float64, count=total)
        amounts = np.fromiter((c for u in users for c in self._bins[u].values()),
                              dtype=np.float64, count=total)
        ages = np.maximum(now - (idx + 0.5) * self.interval, 0.0)
        weighted = amounts * decay.weights(ages)
        user_ids = np.repeat(np.arange(len(users)), counts)
        sums = np.bincount(user_ids, weights=weighted, minlength=len(users))
        return dict(zip(users, sums.tolist()))

    def decayed_totals_batch(self, users: Sequence[str], now: float,
                             decay: Optional[DecayFunction] = None
                             ) -> Dict[str, float]:
        """Decayed totals for a *subset* of users in one 2-D array pass.

        The incremental UMS refresh recomputes only dirty users; calling
        :meth:`decayed_total` per user pays NumPy dispatch overhead per
        call, which dominates once thousands of users churn per tick.
        Here every requested user's bins are scattered into one padded
        ``(present_users, max_bins)`` matrix, the decay weights for the
        whole batch are a single vectorized call, and the per-user sums
        are one row reduction.  Padding cells carry age ``-1`` — every
        decay family weighs negative ages zero — and amount 0.

        Only users present in this histogram appear in the result (the
        caller treats absence as "pruned everywhere", like
        :meth:`decayed_total` returning 0 for unknown users would not).
        """
        decay = decay or NoDecay()
        present = [u for u in users if u in self._bins]
        if not present:
            return {}
        counts = np.fromiter((len(self._bins[u]) for u in present),
                             dtype=np.int64, count=len(present))
        total = int(counts.sum())
        if total == 0:
            return {u: 0.0 for u in present}
        idx = np.fromiter((b for u in present for b in self._bins[u]),
                          dtype=np.float64, count=total)
        amounts = np.fromiter(
            (c for u in present for c in self._bins[u].values()),
            dtype=np.float64, count=total)
        width = int(counts.max())
        rows = np.repeat(np.arange(len(present)), counts)
        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        cols = np.arange(total) - offsets[rows]
        ages = np.full((len(present), width), -1.0)
        ages[rows, cols] = np.maximum(now - (idx + 0.5) * self.interval, 0.0)
        amount_m = np.zeros((len(present), width))
        amount_m[rows, cols] = amounts
        sums = (amount_m * decay.weights(ages)).sum(axis=1)
        return dict(zip(present, sums.tolist()))

    # -- maintenance -------------------------------------------------------

    def memory_bytes(self) -> int:
        """Approximate resident bytes of the histogram state.

        Python dict-of-dict storage: container sizes plus per-entry
        key/value boxes (ints and floats are 28/24 bytes boxed).  Feeds
        the benchmark's bytes/user accounting; O(users), so call it from
        measurement code, not hot paths.
        """
        import sys
        total = sys.getsizeof(self._bins)
        for user, bins in self._bins.items():
            total += sys.getsizeof(user) + sys.getsizeof(bins)
            total += len(bins) * (28 + 24)  # boxed bin index + charge
        return int(total)

    def n_bins(self, user: Optional[str] = None) -> int:
        """Number of stored (user, bin) entries — the USS memory footprint."""
        if user is not None:
            return len(self._bins.get(user, {}))
        return sum(len(b) for b in self._bins.values())

    def prune(self, now: float, horizon: float) -> float:
        """Drop bins whose entire interval lies more than ``horizon`` in
        the past; returns the charge discarded.

        Long-running USS instances bound their memory this way: with an
        exponential decay of half-life *h*, a horizon of ~20 h discards
        only weight below 1e-6; with window decays, the window itself is
        the natural horizon.  Pruning never touches bins that still carry
        decay weight inside the horizon.
        """
        if horizon < 0:
            raise ValueError("horizon must be non-negative")
        dropped = 0.0
        for user in list(self._bins):
            bins = self._bins[user]
            stale = [b for b in bins if (b + 1) * self.interval <= now - horizon]
            for b in stale:
                dropped += bins.pop(b)
            if stale and self._cursors:
                self._mark_all_of(user, stale)
            if not bins:
                del self._bins[user]
        return dropped

    # -- exchange ----------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[int, float]]:
        """Compact per-user per-bin totals — the USS↔USS wire payload."""
        return {u: dict(b) for u, b in self._bins.items()}

    def snapshot_arrays(self) -> Tuple[List[str], List[int], List[int], List[float]]:
        """Full state as the compact array wire format.

        Returns ``(user_table, user_idx, bin_idx, charges)``: each entry
        ``j`` states that user ``user_table[user_idx[j]]`` holds charge
        ``charges[j]`` in bin ``bin_idx[j]`` — every user name is spelled
        out once instead of once per bin.
        """
        user_table: List[str] = []
        user_idx: List[int] = []
        bin_idx: List[int] = []
        charges: List[float] = []
        for user, bins in self._bins.items():
            ui = len(user_table)
            user_table.append(user)
            for b, charge in bins.items():
                user_idx.append(ui)
                bin_idx.append(b)
                charges.append(charge)
        return user_table, user_idx, bin_idx, charges

    def apply_arrays(self, user_table: Sequence[str], user_idx: Sequence[int],
                     bin_idx: Sequence[int], charges: Sequence[float],
                     full: bool = False) -> None:
        """Apply compact-array entries in place (the delta-exchange receiver).

        Entries carry *absolute* bin values (0 deletes).  With ``full=True``
        the arrays describe the sender's complete state: entries not listed
        are removed first, so the call is equivalent to :meth:`replace` but
        keeps change cursors informed.
        """
        if full:
            listed: Dict[str, Set[int]] = {}
            for ui, b in zip(user_idx, bin_idx):
                listed.setdefault(user_table[ui], set()).add(int(b))
            for user in list(self._bins):
                extinct = set(self._bins[user]) - listed.get(user, set())
                for b in extinct:
                    self.set_bin(user, b, 0.0)
        for ui, b, charge in zip(user_idx, bin_idx, charges):
            self.set_bin(user_table[ui], int(b), float(charge))

    def replace(self, snapshot: Mapping[str, Mapping[int, float]]) -> None:
        """Overwrite contents with a snapshot (remote-site bookkeeping).

        Registered cursors see every entry of both the old and the new
        state as dirty — a full replacement gives no finer information.
        """
        if self._cursors:
            for user, bins in self._bins.items():
                self._mark_all_of(user, bins)
        self._bins = {u: {int(i): float(c) for i, c in b.items()}
                      for u, b in snapshot.items()}
        if self._cursors:
            for user, bins in self._bins.items():
                self._mark_all_of(user, bins)

    def merge(self, other: "UsageHistogram") -> None:
        """Add another histogram's contents into this one.

        Requires matching intervals (bins would not line up otherwise).
        """
        if other.interval != self.interval:
            raise ValueError(
                f"cannot merge histograms with intervals {self.interval} != {other.interval}")
        for user, bins in other._bins.items():
            for b, charge in bins.items():
                self.add_bin(user, b, charge)

    @classmethod
    def merged(cls, histograms: Iterable["UsageHistogram"],
               interval: Optional[float] = None) -> "UsageHistogram":
        histograms = list(histograms)
        if interval is None:
            if not histograms:
                raise ValueError("need an interval or at least one histogram")
            interval = histograms[0].interval
        out = cls(interval)
        for h in histograms:
            out.merge(h)
        return out


class UsageNode(TreeNode):
    """Usage-tree node: decayed usage of the entity rooted here."""

    __slots__ = ("usage",)

    def __init__(self, name: str, usage: float = 0.0,
                 parent: Optional["UsageNode"] = None):
        super().__init__(name, parent)
        self.usage = float(usage)

    @property
    def sibling_share(self) -> float:
        """Usage share within the sibling group (0 if the group is idle).

        This per-group normalization is what gives Aequus *subgroup
        isolation*: an entity's balance is judged only against its siblings.
        """
        if self.parent is None:
            return 1.0
        total = sum(c.usage for c in self.parent.children.values())  # type: ignore[attr-defined]
        if total <= 0:
            return 0.0
        return self.usage / total

    @property
    def total_usage_share(self) -> float:
        """Product of sibling shares down the path (percental projection)."""
        share = 1.0
        node: Optional[UsageNode] = self
        while node is not None and node.parent is not None:
            share *= node.sibling_share
            node = node.parent  # type: ignore[assignment]
        return share


class UsageTree(Tree):
    node_class = UsageNode
    root: UsageNode

    def __init__(self, root: Optional[UsageNode] = None):
        super().__init__(root if root is not None else UsageNode(""))

    def set_usage(self, path: str, usage: float) -> UsageNode:
        node = self.ensure_path(path)
        node.usage = float(usage)  # type: ignore[attr-defined]
        return node  # type: ignore[return-value]

    def roll_up(self) -> None:
        """Set every internal node's usage to the sum of its children.

        Leaf usage is taken as authoritative; pre-existing internal values
        are overwritten (internal entities consume only through members).
        """

        def visit(node: UsageNode) -> float:
            if node.is_leaf:
                return node.usage
            node.usage = sum(visit(c) for c in node.children.values())  # type: ignore[arg-type]
            return node.usage

        visit(self.root)


def build_usage_tree(structure: Tree, per_user_usage: Mapping[str, float]) -> UsageTree:
    """Build a usage tree mirroring ``structure`` (normally the policy tree).

    ``per_user_usage`` maps *leaf paths* (or bare grid identities matching
    leaf names) to decayed usage totals.  Users present in the usage data
    but absent from the structure are ignored here — policy enforcement is
    the PDS's job; unknown users are handled upstream by mapping them to a
    default group.
    """
    usage_tree = UsageTree()
    by_name: Dict[str, str] = {}
    for leaf in structure.leaves():
        usage_tree.ensure_path(leaf.path)
        by_name.setdefault(leaf.name, leaf.path)
    for key, usage in per_user_usage.items():
        path = key if key.startswith("/") else by_name.get(key)
        if path is None:
            continue
        node = usage_tree.find(path)
        if node is not None:
            node.usage = float(usage)  # type: ignore[attr-defined]
    usage_tree.roll_up()
    return usage_tree
