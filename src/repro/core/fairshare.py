"""The fairshare calculation: policy tree × usage tree → fairshare tree.

This is the heart of Aequus (paper Figure 1): for every node of the entity
hierarchy, compare the node's *target* share (normalized policy weight
within its sibling group) with its *actual* share (decayed usage within the
same sibling group), producing:

* a **priority** ``p = k·absolute + (1−k)·relative`` — the scalar reported
  in the paper's evaluation figures (e.g. the 0.56 ceiling for U3 in
  Figure 13b), and
* a **balance score** in ``[0, 1]`` centered at 0.5 — the normalized value
  a fairshare-vector element is made of.

Per-sibling-group normalization is what gives top-down *subgroup isolation*:
a node's values depend only on its group, so usage shifts inside one project
can never affect the ordering of another project's users above that level.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from .distance import FairshareParameters, balance_score, combined_priority
from .policy import PolicyNode, PolicyTree
from .tree import Tree, TreeNode
from .usage import UsageTree, build_usage_tree
from .vector import FairshareVector

__all__ = ["FairshareNode", "FairshareTree", "compute_fairshare_tree"]


class FairshareNode(TreeNode):
    """Fairshare-tree node: target share, usage share, priority, balance."""

    __slots__ = ("target_share", "usage_share", "priority", "balance")

    def __init__(self, name: str, target_share: float = 1.0,
                 usage_share: float = 0.0, priority: float = 0.0,
                 balance: float = 0.5, parent: Optional["FairshareNode"] = None):
        super().__init__(name, parent)
        self.target_share = float(target_share)
        self.usage_share = float(usage_share)
        self.priority = float(priority)
        self.balance = float(balance)


class FairshareTree(Tree):
    """Pre-computed fairshare values for a whole entity hierarchy.

    The FCS recomputes this tree periodically; job prioritization then only
    extracts vectors / projected values from it (no real-time calculation
    when jobs arrive — paper Section II-A).
    """

    node_class = FairshareNode
    root: FairshareNode

    def __init__(self, parameters: Optional[FairshareParameters] = None,
                 root: Optional[FairshareNode] = None):
        super().__init__(root if root is not None else FairshareNode(""))
        self.parameters = parameters or FairshareParameters()

    # -- extraction ---------------------------------------------------------

    def vector(self, path: str) -> FairshareVector:
        """Fairshare vector for the entity at ``path`` (root -> leaf scores)."""
        node = self[path]
        scores = [n.balance for n in node.path_from_root()]  # type: ignore[attr-defined]
        return FairshareVector.from_scores(scores, self.parameters.resolution)

    def vectors(self) -> Dict[str, FairshareVector]:
        """Vectors for every leaf (user) in the tree."""
        return {leaf.path: self.vector(leaf.path) for leaf in self.leaves()}

    def priority(self, path: str) -> float:
        """Leaf-level scalar priority (the value plotted in the evaluation)."""
        return self[path].priority  # type: ignore[attr-defined]

    def priorities(self) -> Dict[str, float]:
        return {leaf.path: leaf.priority for leaf in self.leaves()}  # type: ignore[attr-defined]

    def target_total_share(self, path: str) -> float:
        """Product of target shares along the path (percental projection)."""
        node = self[path]
        share = 1.0
        for n in node.path_from_root():
            share *= n.target_share  # type: ignore[attr-defined]
        return share

    def usage_total_share(self, path: str) -> float:
        """Product of usage shares along the path (percental projection)."""
        node = self[path]
        share = 1.0
        for n in node.path_from_root():
            share *= n.usage_share  # type: ignore[attr-defined]
        return share


def compute_fairshare_tree(policy: PolicyTree,
                           usage: Optional[UsageTree] = None,
                           per_user_usage: Optional[Mapping[str, float]] = None,
                           parameters: Optional[FairshareParameters] = None) -> FairshareTree:
    """Compute the fairshare tree for ``policy`` given usage data.

    Usage may be given either as a pre-built :class:`UsageTree` (mirroring
    the policy structure; extra nodes are ignored, missing nodes count as
    zero usage) or as a flat ``per_user_usage`` mapping of decayed usage
    totals keyed by leaf path or leaf name (the UMS output format).
    """
    if usage is not None and per_user_usage is not None:
        raise ValueError("pass either a usage tree or per-user usage, not both")
    if usage is None:
        usage = build_usage_tree(policy, per_user_usage or {})
    params = parameters or FairshareParameters()
    out = FairshareTree(params)

    def visit(policy_node: PolicyNode, usage_parent, out_parent: FairshareNode) -> None:
        children = list(policy_node.children.values())
        if not children:
            return
        weight_total = sum(c.weight for c in children)  # type: ignore[attr-defined]
        usage_children = {}
        if usage_parent is not None:
            usage_children = {name: node for name, node in usage_parent.children.items()}
        usage_total = sum(getattr(u, "usage", 0.0)
                          for name, u in usage_children.items()
                          if name in policy_node.children)
        for child in children:
            target = child.weight / weight_total  # type: ignore[attr-defined]
            u_node = usage_children.get(child.name)
            u_raw = getattr(u_node, "usage", 0.0) if u_node is not None else 0.0
            u_share = (u_raw / usage_total) if usage_total > 0 else 0.0
            node = FairshareNode(
                child.name,
                target_share=target,
                usage_share=u_share,
                priority=combined_priority(target, u_share, params.k),
                balance=balance_score(target, u_share, params.k),
            )
            out_parent.add_child(node)
            visit(child, u_node, node)  # type: ignore[arg-type]

    visit(policy.root, usage.root, out.root)
    return out
