"""Fairshare vectors (paper Section III-C, Figure 3).

The fairshare value of a user is the vector of per-level fairshare values on
the path from the tree root down to the user's leaf.  Elements use a
configurable resolution (Figure 3 uses the range 0–9999); when a path ends
above the deepest tree level the vector is padded with the *balance point*,
the center of the value range.

The vector representation has four key properties (all probed in the Table I
benchmark):

* **arbitrary depth** — any number of elements;
* **unlimited precision** — elements are floats, limited only by the
  floating-point representation;
* **subgroup isolation** — an element is influenced only by the entity's
  sibling group at that level, and comparisons are lexicographic
  (top level first), so a subgroup imbalance can never leak upward;
* **proportionality** — relative differences between users' balances are
  preserved in the element values.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

__all__ = ["FairshareVector"]


class FairshareVector:
    """An ordered, comparable fairshare vector.

    Comparison is lexicographic with balance-point padding, so vectors of
    different depth compare correctly: a truncated path behaves as if it
    were exactly in balance on all deeper levels.  Higher is better
    (more underserved).
    """

    __slots__ = ("elements", "resolution")

    def __init__(self, elements: Iterable[float], resolution: int = 9999):
        if resolution < 1:
            raise ValueError("resolution must be >= 1")
        elems = tuple(float(e) for e in elements)
        if not elems:
            raise ValueError("a fairshare vector needs at least one element")
        for e in elems:
            if not 0.0 <= e <= resolution:
                raise ValueError(f"element {e} outside [0, {resolution}]")
        self.elements: Tuple[float, ...] = elems
        self.resolution = int(resolution)

    @classmethod
    def from_scores(cls, scores: Iterable[float], resolution: int = 9999) -> "FairshareVector":
        """Build from normalized balance scores in ``[0, 1]``."""
        return cls([min(max(s, 0.0), 1.0) * resolution for s in scores], resolution)

    @property
    def balance_point(self) -> float:
        return self.resolution / 2.0

    @property
    def depth(self) -> int:
        return len(self.elements)

    def padded(self, depth: int) -> Tuple[float, ...]:
        """Elements padded with the balance point up to ``depth``."""
        if depth < self.depth:
            raise ValueError(f"cannot pad to {depth} < depth {self.depth}")
        return self.elements + (self.balance_point,) * (depth - self.depth)

    def scores(self) -> List[float]:
        """Elements normalized back to ``[0, 1]``."""
        return [e / self.resolution for e in self.elements]

    def quantized(self) -> Tuple[int, ...]:
        """Integer rendering of the elements (Figure 3 shows e.g. 7073)."""
        return tuple(int(round(e)) for e in self.elements)

    # -- comparisons ---------------------------------------------------------

    def _key(self, other: "FairshareVector") -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
        if self.resolution != other.resolution:
            raise ValueError(
                f"cannot compare vectors of resolution {self.resolution} and {other.resolution}")
        depth = max(self.depth, other.depth)
        return self.padded(depth), other.padded(depth)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FairshareVector):
            return NotImplemented
        a, b = self._key(other)
        return a == b

    def __lt__(self, other: "FairshareVector") -> bool:
        a, b = self._key(other)
        return a < b

    def __le__(self, other: "FairshareVector") -> bool:
        a, b = self._key(other)
        return a <= b

    def __gt__(self, other: "FairshareVector") -> bool:
        a, b = self._key(other)
        return a > b

    def __ge__(self, other: "FairshareVector") -> bool:
        a, b = self._key(other)
        return a >= b

    def __hash__(self) -> int:
        # Trailing balance points are semantically invisible; strip them so
        # equal vectors hash equally.
        elems = list(self.elements)
        while len(elems) > 1 and elems[-1] == self.balance_point:
            elems.pop()
        return hash((tuple(elems), self.resolution))

    def __len__(self) -> int:
        return self.depth

    def __iter__(self):
        return iter(self.elements)

    def __getitem__(self, i: int) -> float:
        return self.elements[i]

    def __repr__(self) -> str:
        body = ".".join(f"{int(round(e)):0{len(str(self.resolution))}d}" for e in self.elements)
        return f"FairshareVector({body})"

    @staticmethod
    def sort_descending(vectors: Sequence["FairshareVector"]) -> List[int]:
        """Indices of ``vectors`` sorted best-first (stable)."""
        return sorted(range(len(vectors)), key=lambda i: vectors[i], reverse=True)
