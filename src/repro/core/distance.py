"""Policy-to-usage distance metrics (paper Sections II-A and IV-A.5).

Aequus supports both *absolute* and *relative* distance metrics when
comparing usage to policy shares, blended by a configurable weight ``k``
(default 0.5, giving both components equal influence).

The paper pins the ranges precisely (Section IV-A.5):

* the **relative** component is always in ``[0, 1]``;
* the **absolute** component is in ``[0, user_share]``;
* with ``k = 0.5`` a user with total share 0.12 therefore has maximum
  priority ``0.5 * (1 + 0.12) = 0.56`` (Figure 13b).

We realize these constraints as:

* ``absolute = clip(share - usage, 0, share)`` — the unconsumed part of the
  entitlement, maximal (= the share) at zero usage, zero at or beyond
  balance;
* ``relative = share / (share + usage)`` — 1 at zero usage, exactly 0.5 at
  perfect balance (usage == share), tending to 0 when heavily overserved.
  The 0.5 midpoint realizes the *balance point* being the center of the
  value range (paper Section III-C, Figure 3).

``priority = k * absolute + (1 - k) * relative``.

For fairshare-*vector* elements a value normalized to ``[0, 1]`` with the
balance point at 0.5 is needed; :func:`balance_score` maps the absolute
component symmetrically around 0.5 for that purpose.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "absolute_distance",
    "relative_distance",
    "combined_priority",
    "balance_score",
    "FairshareParameters",
]


def absolute_distance(share: float, usage: float) -> float:
    """Absolute distance: unconsumed entitlement, clipped to ``[0, share]``."""
    if share < 0 or usage < 0:
        raise ValueError("shares and usage must be non-negative")
    return min(max(share - usage, 0.0), share)


def relative_distance(share: float, usage: float) -> float:
    """Relative distance in ``[0, 1]``; 0.5 at balance, 1 at zero usage.

    An entity with zero share is entitled to nothing: its relative distance
    is 0 (it can only ever be at or beyond balance).
    """
    if share < 0 or usage < 0:
        raise ValueError("shares and usage must be non-negative")
    if share == 0.0:
        return 0.0
    return share / (share + usage)


def combined_priority(share: float, usage: float, k: float = 0.5) -> float:
    """Blend of the two metrics: ``k * absolute + (1 - k) * relative``."""
    if not 0.0 <= k <= 1.0:
        raise ValueError("k must lie in [0, 1]")
    return k * absolute_distance(share, usage) + (1.0 - k) * relative_distance(share, usage)


def balance_score(share: float, usage: float, k: float = 0.5) -> float:
    """Normalized balance in ``[0, 1]`` with 0.5 at perfect balance.

    Used for fairshare-vector elements: the signed absolute difference
    ``share - usage`` (in share units, i.e. both operands are fractions of
    the sibling group) is mapped symmetrically around 0.5, and blended with
    the relative component which is already centered at 0.5.
    """
    if not 0.0 <= k <= 1.0:
        raise ValueError("k must lie in [0, 1]")
    if share < 0 or usage < 0:
        raise ValueError("shares and usage must be non-negative")
    signed_abs = 0.5 + (share - usage) / 2.0
    signed_abs = min(max(signed_abs, 0.0), 1.0)
    if share == 0.0 and usage == 0.0:
        rel = 0.5  # no entitlement, no usage: by definition at balance
    elif share == 0.0:
        rel = 0.0
    else:
        rel = share / (share + usage)
    return k * signed_abs + (1.0 - k) * rel


@dataclass(frozen=True)
class FairshareParameters:
    """Tunable parameters of the fairshare calculation.

    ``k``
        Weight between the absolute and relative distance metrics
        (paper default 0.5).
    ``resolution``
        Per-element value range of fairshare vectors; Figure 3 uses
        ``[0, 9999]``.
    """

    k: float = 0.5
    resolution: int = 9999

    def __post_init__(self) -> None:
        if not 0.0 <= self.k <= 1.0:
            raise ValueError("k must lie in [0, 1]")
        if self.resolution < 1:
            raise ValueError("resolution must be >= 1")

    @property
    def balance_point(self) -> float:
        """Center of the vector value range (pads truncated paths)."""
        return self.resolution / 2.0
