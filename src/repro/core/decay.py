"""Usage decay functions (paper Section II-A).

The fairshare algorithm is parameterized with a *decay function* that
controls how the impact of previous usage decreases over time.  Decay is
applied per usage-histogram interval: a job's charge recorded in a bin whose
midpoint lies ``age`` seconds in the past contributes ``charge * weight(age)``
to the decayed usage total.

All functions return weights in ``[0, 1]`` with ``weight(0) == 1`` and are
non-increasing in age — invariants the property-based tests enforce.
"""

from __future__ import annotations

import math
from typing import Iterable, Tuple

import numpy as np

__all__ = [
    "DecayFunction",
    "NoDecay",
    "ExponentialDecay",
    "LinearDecay",
    "SlidingWindowDecay",
    "StepDecay",
    "decayed_sum",
]


class DecayFunction:
    """Base class: maps usage age (seconds) to a weight in ``[0, 1]``."""

    def weight(self, age: float) -> float:
        raise NotImplementedError

    def weights(self, ages: np.ndarray) -> np.ndarray:
        """Vectorized weights; subclasses override with closed forms.

        Accepts any array shape (the batched decay path hands in 2-D
        user × bin age matrices) and preserves it.
        """
        ages = np.asarray(ages, dtype=float)
        flat = np.array([self.weight(a) for a in ages.ravel()])
        return flat.reshape(ages.shape)

    def __call__(self, age: float) -> float:
        return self.weight(age)


class NoDecay(DecayFunction):
    """All history counts equally (weight 1 forever)."""

    def weight(self, age: float) -> float:
        return 1.0 if age >= 0 else 0.0

    def weights(self, ages: np.ndarray) -> np.ndarray:
        ages = np.asarray(ages, dtype=float)
        return np.where(ages >= 0, 1.0, 0.0)

    def __repr__(self) -> str:
        return "NoDecay()"


class ExponentialDecay(DecayFunction):
    """Half-life decay: ``weight(age) = 2**(-age / half_life)``.

    The default in Aequus deployments; matches the decay style used by the
    SLURM multifactor plugin ("PriorityDecayHalfLife").
    """

    def __init__(self, half_life: float):
        if half_life <= 0:
            raise ValueError("half_life must be positive")
        self.half_life = float(half_life)

    def weight(self, age: float) -> float:
        if age < 0:
            return 0.0
        return math.exp(-math.log(2.0) * age / self.half_life)

    def weights(self, ages: np.ndarray) -> np.ndarray:
        ages = np.asarray(ages, dtype=float)
        w = np.exp(-math.log(2.0) * np.maximum(ages, 0.0) / self.half_life)
        return np.where(ages >= 0, w, 0.0)

    def __repr__(self) -> str:
        return f"ExponentialDecay(half_life={self.half_life:g})"


class LinearDecay(DecayFunction):
    """Linear ramp to zero over ``window`` seconds."""

    def __init__(self, window: float):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = float(window)

    def weight(self, age: float) -> float:
        if age < 0:
            return 0.0
        return max(0.0, 1.0 - age / self.window)

    def weights(self, ages: np.ndarray) -> np.ndarray:
        ages = np.asarray(ages, dtype=float)
        w = np.clip(1.0 - ages / self.window, 0.0, 1.0)
        return np.where(ages >= 0, w, 0.0)

    def __repr__(self) -> str:
        return f"LinearDecay(window={self.window:g})"


class SlidingWindowDecay(DecayFunction):
    """Hard cutoff: full weight inside the window, zero outside."""

    def __init__(self, window: float):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = float(window)

    def weight(self, age: float) -> float:
        return 1.0 if 0 <= age <= self.window else 0.0

    def weights(self, ages: np.ndarray) -> np.ndarray:
        ages = np.asarray(ages, dtype=float)
        return np.where((ages >= 0) & (ages <= self.window), 1.0, 0.0)

    def __repr__(self) -> str:
        return f"SlidingWindowDecay(window={self.window:g})"


class StepDecay(DecayFunction):
    """Piecewise-constant decay given as ``(age_threshold, weight)`` steps.

    Steps must have increasing thresholds and non-increasing weights in
    ``[0, 1]``.  Ages beyond the last threshold weigh zero.
    """

    def __init__(self, steps: Iterable[Tuple[float, float]]):
        steps = sorted(steps)
        if not steps:
            raise ValueError("at least one step is required")
        prev_w = 1.0
        for threshold, w in steps:
            if threshold < 0:
                raise ValueError("thresholds must be non-negative")
            if not 0.0 <= w <= 1.0:
                raise ValueError("weights must lie in [0, 1]")
            if w > prev_w:
                raise ValueError("weights must be non-increasing")
            prev_w = w
        self.steps = steps
        self._thresholds = np.array([t for t, _ in steps], dtype=float)
        self._weights = np.array([w for _, w in steps], dtype=float)

    def weight(self, age: float) -> float:
        if age < 0:
            return 0.0
        for threshold, w in self.steps:
            if age <= threshold:
                return w
        return 0.0

    def weights(self, ages: np.ndarray) -> np.ndarray:
        """Closed form: one ``searchsorted`` over the step thresholds.

        ``side="left"`` finds the first threshold >= age, matching the
        scalar ``age <= threshold`` scan; ages beyond the last threshold
        (and negative ages) weigh zero.
        """
        ages = np.asarray(ages, dtype=float)
        idx = np.searchsorted(self._thresholds, ages, side="left")
        in_range = idx < len(self._weights)
        w = self._weights[np.minimum(idx, len(self._weights) - 1)]
        return np.where((ages >= 0) & in_range, w, 0.0)

    def __repr__(self) -> str:
        return f"StepDecay({self.steps!r})"


def decayed_sum(amounts: np.ndarray, ages: np.ndarray, decay: DecayFunction) -> float:
    """Sum ``amounts`` weighted by ``decay`` at the corresponding ``ages``."""
    amounts = np.asarray(amounts, dtype=float)
    if amounts.size == 0:
        return 0.0
    return float(np.dot(amounts, decay.weights(np.asarray(ages, dtype=float))))
