"""Core Aequus fairshare machinery: policies, usage, fairshare trees,
vectors, and projections (the paper's primary contribution)."""

from .decay import (
    DecayFunction,
    ExponentialDecay,
    LinearDecay,
    NoDecay,
    SlidingWindowDecay,
    StepDecay,
)
from .distance import (
    FairshareParameters,
    absolute_distance,
    balance_score,
    combined_priority,
    relative_distance,
)
from .fairshare import FairshareNode, FairshareTree, compute_fairshare_tree
from .flat import FlatFairshare, FlatPolicy, compute_fairshare_flat
from .policy import PolicyError, PolicyNode, PolicyTree, parse_policy
from .projection import (
    BitwiseVectorProjection,
    DictionaryOrderingProjection,
    PercentalProjection,
    Projection,
    make_projection,
)
from .tree import Tree, TreeNode
from .usage import UsageHistogram, UsageNode, UsageRecord, UsageTree, build_usage_tree
from .vector import FairshareVector
from .vectorfactors import (
    AgeVectorFactor,
    CompositeVectorPriority,
    JobSizeVectorFactor,
    QosVectorFactor,
    VectorFactor,
)

__all__ = [
    "DecayFunction", "ExponentialDecay", "LinearDecay", "NoDecay",
    "SlidingWindowDecay", "StepDecay",
    "FairshareParameters", "absolute_distance", "balance_score",
    "combined_priority", "relative_distance",
    "FairshareNode", "FairshareTree", "compute_fairshare_tree",
    "FlatFairshare", "FlatPolicy", "compute_fairshare_flat",
    "PolicyError", "PolicyNode", "PolicyTree", "parse_policy",
    "BitwiseVectorProjection", "DictionaryOrderingProjection",
    "PercentalProjection", "Projection", "make_projection",
    "Tree", "TreeNode",
    "UsageHistogram", "UsageNode", "UsageRecord", "UsageTree", "build_usage_tree",
    "FairshareVector",
    "AgeVectorFactor", "CompositeVectorPriority", "JobSizeVectorFactor",
    "QosVectorFactor", "VectorFactor",
]
