"""Array-backed fairshare kernel: the policy tree flattened to NumPy arrays.

The object-tree fairshare computation (:func:`repro.core.fairshare.
compute_fairshare_tree`) rebuilds three Python trees per FCS refresh and
re-walks every leaf's path for vector extraction and the percental
projection.  At grid scale (10⁴–10⁶ users) that recursive Python hot path
dominates every benchmark scenario.

This module lowers a :class:`~repro.core.policy.PolicyTree` into parallel
arrays *once per policy epoch* (:class:`FlatPolicy`) and then evaluates a
whole refresh — sibling-group target/usage normalization, priorities,
balance scores, fairshare-vector elements, and path products — as
segment-wise array operations over all nodes at once
(:meth:`FlatPolicy.compute` → :class:`FlatFairshare`).

Layout
------
Nodes are numbered in BFS order (the root is *not* stored).  Because a
parent's children are appended as one contiguous block when the parent is
dequeued, every sibling group occupies a contiguous segment, so per-group
sums are single ``np.add.reduceat`` calls and per-node normalization is one
gather + divide.  Usage roll-up runs level by level (deepest first) with
``np.add.at`` — ``depth`` vectorized passes instead of ``n`` recursive
calls.  ``leaf_levels`` maps each leaf row to the node indices on its
root→leaf path (``-1``-padded), turning vector extraction and the percental
path products into one fancy-indexing gather + ``prod`` over a matrix.

The object-tree :class:`~repro.core.fairshare.FairshareTree` API remains
available as a thin materialized view (:meth:`FlatFairshare.to_tree`) so
existing tests and figures are unaffected.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from .distance import FairshareParameters
from .fairshare import FairshareNode, FairshareTree
from .policy import PolicyTree
from .vector import FairshareVector

__all__ = ["FlatPolicy", "FlatFairshare", "compute_fairshare_flat"]


class FlatPolicy:
    """A :class:`PolicyTree` compiled to parallel arrays.

    Compilation is the once-per-policy-epoch step; :meth:`compute` is the
    per-refresh hot path.  The compiled form is immutable — recompile when
    the policy changes (the FCS keys compilation on the PDS policy version).
    """

    __slots__ = (
        "n_nodes", "n_leaves", "max_depth",
        "parent", "depth", "weight", "group_id", "group_start",
        "names", "paths", "path_index",
        "levels", "leaf_index", "leaf_paths", "leaf_names", "leaf_slot",
        "leaf_levels", "by_name", "name_collisions",
        "_target_share", "_target_valid",
    )

    def __init__(self, policy: PolicyTree):
        names: List[str] = []
        paths: List[str] = []
        parent: List[int] = []
        depth: List[int] = []
        weight: List[float] = []
        group_id: List[int] = []
        group_start: List[int] = []

        # BFS: children of one parent land in one contiguous block, giving
        # sibling groups as reduceat segments.
        queue: List[Tuple[object, int]] = [(policy.root, -1)]
        head = 0
        while head < len(queue):
            node, idx = queue[head]
            head += 1
            children = list(node.children.values())  # type: ignore[attr-defined]
            if not children:
                continue
            gid = len(group_start)
            group_start.append(len(names))
            base_path = paths[idx] if idx >= 0 else ""
            base_depth = depth[idx] if idx >= 0 else 0
            for child in children:
                cidx = len(names)
                names.append(child.name)
                paths.append(base_path + "/" + child.name)
                parent.append(idx)
                depth.append(base_depth + 1)
                weight.append(float(child.weight))
                group_id.append(gid)
                queue.append((child, cidx))

        self.n_nodes = len(names)
        self.names = names
        self.paths = paths
        self.path_index: Dict[str, int] = {p: i for i, p in enumerate(paths)}
        self.parent = np.asarray(parent, dtype=np.int64)
        self.depth = np.asarray(depth, dtype=np.int64)
        self.weight = np.asarray(weight, dtype=np.float64)
        self.group_id = np.asarray(group_id, dtype=np.int64)
        self.group_start = np.asarray(group_start, dtype=np.int64)
        self.max_depth = int(self.depth.max()) if self.n_nodes else 0

        # node indices per depth level, for the level-wise usage roll-up
        self.levels: List[np.ndarray] = [
            np.nonzero(self.depth == d)[0] for d in range(1, self.max_depth + 1)
        ]

        # leaves: a node is a leaf iff no node names it as parent
        is_leaf = np.ones(self.n_nodes, dtype=bool)
        if self.n_nodes:
            has_children = self.parent[self.parent >= 0]
            is_leaf[has_children] = False
        self.leaf_index = np.nonzero(is_leaf)[0]
        self.n_leaves = int(self.leaf_index.size)
        self.leaf_paths = [paths[i] for i in self.leaf_index]
        self.leaf_names = [names[i] for i in self.leaf_index]
        self.leaf_slot: Dict[str, int] = {p: r for r, p in enumerate(self.leaf_paths)}

        # leaf row -> node indices along root->leaf path, -1 padded
        self.leaf_levels = np.full((self.n_leaves, self.max_depth), -1,
                                   dtype=np.int64)
        for row, idx in enumerate(self.leaf_index):
            d = int(self.depth[idx])
            node = int(idx)
            for level in range(d - 1, -1, -1):
                self.leaf_levels[row, level] = node
                node = int(self.parent[node])

        # bare-name resolution must match the object-tree services exactly:
        # first leaf in *pre-order* wins (Tree.leaves() traversal order)
        self.by_name: Dict[str, str] = {}
        self.name_collisions = 0
        for leaf in policy.leaves():
            if leaf.name in self.by_name:
                if self.by_name[leaf.name] != leaf.path:
                    self.name_collisions += 1
            else:
                self.by_name[leaf.name] = leaf.path

        # target shares depend only on the policy: precompute at compile time
        if self.n_nodes:
            wsum = np.add.reduceat(self.weight, self.group_start)
            self._target_share = self.weight / wsum[self.group_id]
        else:
            self._target_share = np.zeros(0, dtype=np.float64)
        self._target_valid = True

    # -- per-refresh evaluation ---------------------------------------------

    def leaf_usage_vector(self, per_user_usage: Mapping[str, float]) -> np.ndarray:
        """Decayed usage totals as a dense per-leaf vector.

        Keys are leaf paths or bare leaf names (the UMS output format);
        later keys targeting the same leaf overwrite earlier ones, matching
        :func:`~repro.core.usage.build_usage_tree` assignment semantics.
        """
        vec = np.zeros(self.n_leaves, dtype=np.float64)
        for key, value in per_user_usage.items():
            path = key if key.startswith("/") else self.by_name.get(key)
            if path is None:
                continue
            slot = self.leaf_slot.get(path)
            if slot is not None:
                vec[slot] = float(value)
        return vec

    def compute(self, per_user_usage: Optional[Mapping[str, float]] = None,
                parameters: Optional[FairshareParameters] = None,
                leaf_usage: Optional[np.ndarray] = None) -> "FlatFairshare":
        """Evaluate one refresh: all node values in a handful of array ops."""
        params = parameters or FairshareParameters()
        if leaf_usage is None:
            leaf_usage = self.leaf_usage_vector(per_user_usage or {})
        usage = np.zeros(self.n_nodes, dtype=np.float64)
        usage[self.leaf_index] = leaf_usage
        # roll up, deepest level first (depth-1 nodes have the virtual root
        # as parent and need no propagation)
        for level_nodes in reversed(self.levels[1:]):
            np.add.at(usage, self.parent[level_nodes], usage[level_nodes])

        target = self._target_share
        usum = np.add.reduceat(usage, self.group_start)[self.group_id] \
            if self.n_nodes else np.zeros(0)
        with np.errstate(divide="ignore", invalid="ignore"):
            usage_share = np.where(usum > 0.0, usage / usum, 0.0)

        k = params.k
        # mirrors distance.combined_priority / distance.balance_score
        absolute = np.clip(target - usage_share, 0.0, target)
        with np.errstate(divide="ignore", invalid="ignore"):
            rel = np.where(target > 0.0, target / (target + usage_share), 0.0)
        priority = k * absolute + (1.0 - k) * rel
        signed_abs = np.clip(0.5 + (target - usage_share) / 2.0, 0.0, 1.0)
        rel_balance = np.where(target > 0.0, rel,
                               np.where(usage_share == 0.0, 0.5, 0.0))
        balance = k * signed_abs + (1.0 - k) * rel_balance

        return FlatFairshare(self, params, usage, usage_share, priority, balance)


class FlatFairshare:
    """One refresh worth of fairshare values over a :class:`FlatPolicy`.

    Everything the services and projections consume — leaf vectors, path
    share products, priorities — is served from arrays; the object tree is
    materialized only on demand (:meth:`to_tree`).
    """

    __slots__ = ("flat", "parameters", "usage", "usage_share", "priority",
                 "balance", "_element_matrix", "_path_products")

    def __init__(self, flat: FlatPolicy, parameters: FairshareParameters,
                 usage: np.ndarray, usage_share: np.ndarray,
                 priority: np.ndarray, balance: np.ndarray):
        self.flat = flat
        self.parameters = parameters
        self.usage = usage
        self.usage_share = usage_share
        self.priority = priority
        self.balance = balance
        self._element_matrix: Optional[np.ndarray] = None
        self._path_products: Optional[Tuple[np.ndarray, np.ndarray]] = None

    @property
    def target_share(self) -> np.ndarray:
        return self.flat._target_share

    @property
    def leaf_paths(self) -> List[str]:
        return self.flat.leaf_paths

    @property
    def leaf_depths(self) -> np.ndarray:
        return self.flat.depth[self.flat.leaf_index]

    # -- vector extraction (all leaves at once) -----------------------------

    def element_matrix(self) -> np.ndarray:
        """``(n_leaves, max_depth)`` fairshare-vector elements.

        Row *r* holds leaf *r*'s path balances scaled to the vector
        resolution; levels below the leaf are padded with the balance point,
        so rows compare exactly like padded :class:`FairshareVector` tuples.
        """
        if self._element_matrix is None:
            flat = self.flat
            res = float(self.parameters.resolution)
            idx = np.maximum(flat.leaf_levels, 0)
            scores = np.clip(self.balance[idx], 0.0, 1.0) * res
            self._element_matrix = np.where(flat.leaf_levels >= 0, scores,
                                            self.parameters.balance_point)
        return self._element_matrix

    def path_products(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-leaf ``(target_total, usage_total)`` share products."""
        if self._path_products is None:
            flat = self.flat
            idx = np.maximum(flat.leaf_levels, 0)
            mask = flat.leaf_levels >= 0
            tt = np.where(mask, self.target_share[idx], 1.0).prod(axis=1)
            ut = np.where(mask, self.usage_share[idx], 1.0).prod(axis=1)
            self._path_products = (tt, ut)
        return self._path_products

    # -- point queries ------------------------------------------------------

    def node_priority(self, path: str) -> float:
        return float(self.priority[self.flat.path_index[path]])

    def priorities(self) -> Dict[str, float]:
        pr = self.priority[self.flat.leaf_index]
        return dict(zip(self.flat.leaf_paths, pr.tolist()))

    def vector(self, path: str) -> FairshareVector:
        row = self.flat.leaf_slot[path]
        depth = int(self.leaf_depths[row])
        elems = self.element_matrix()[row, :depth]
        return FairshareVector(elems.tolist(), self.parameters.resolution)

    def vectors(self) -> Dict[str, FairshareVector]:
        matrix = self.element_matrix()
        depths = self.leaf_depths
        res = self.parameters.resolution
        return {path: FairshareVector(matrix[r, :int(depths[r])].tolist(), res)
                for r, path in enumerate(self.flat.leaf_paths)}

    # -- object-tree view ---------------------------------------------------

    def to_tree(self) -> FairshareTree:
        """Materialize the classic :class:`FairshareTree` (thin view).

        Children are attached in the policy's original (pre-order insertion)
        order per parent, so traversal order matches the object-tree path.
        """
        flat = self.flat
        out = FairshareTree(self.parameters)
        nodes: List[FairshareNode] = []
        for i in range(flat.n_nodes):
            node = FairshareNode(
                flat.names[i],
                target_share=float(self.target_share[i]),
                usage_share=float(self.usage_share[i]),
                priority=float(self.priority[i]),
                balance=float(self.balance[i]),
            )
            nodes.append(node)
            parent = flat.parent[i]
            (out.root if parent < 0 else nodes[parent]).add_child(node)
        return out


def compute_fairshare_flat(policy: PolicyTree,
                           per_user_usage: Optional[Mapping[str, float]] = None,
                           parameters: Optional[FairshareParameters] = None) -> FlatFairshare:
    """One-shot convenience: compile and evaluate in one call.

    Services that refresh repeatedly should keep the :class:`FlatPolicy`
    compiled across refreshes instead (the FCS does).
    """
    return FlatPolicy(policy).compute(per_user_usage, parameters)
