"""Array-backed fairshare kernel: the policy tree flattened to NumPy arrays.

The object-tree fairshare computation (:func:`repro.core.fairshare.
compute_fairshare_tree`) rebuilds three Python trees per FCS refresh and
re-walks every leaf's path for vector extraction and the percental
projection.  At grid scale (10⁴–10⁶ users) that recursive Python hot path
dominates every benchmark scenario.

This module lowers a :class:`~repro.core.policy.PolicyTree` into parallel
arrays *once per policy epoch* (:class:`FlatPolicy`) and then evaluates a
whole refresh — sibling-group target/usage normalization, priorities,
balance scores, fairshare-vector elements, and path products — as
segment-wise array operations over all nodes at once
(:meth:`FlatPolicy.compute` → :class:`FlatFairshare`).

Layout
------
Nodes are numbered in BFS order (the root is *not* stored).  Because a
parent's children are appended as one contiguous block when the parent is
dequeued, every sibling group occupies a contiguous segment, so per-group
sums are single ``np.add.reduceat`` calls and per-node normalization is one
gather + divide.  Usage roll-up runs level by level (deepest first) with
``np.add.at`` — ``depth`` vectorized passes instead of ``n`` recursive
calls.  ``leaf_levels`` maps each leaf row to the node indices on its
root→leaf path (``-1``-padded), turning vector extraction and the percental
path products into one fancy-indexing gather + ``prod`` over a matrix.

Incremental recompilation (DESIGN.md §12) generalizes the layout: a
*logical* sibling group may span several *physical* segments
(``group_start`` row offsets tagged with a logical group id in ``seg_gid``),
so a node added after compilation becomes a new one-row segment sharing its
siblings' logical group — no renumbering of existing rows, which is what
keeps serve-plane leaf ids stable.  Removed subtrees are tombstoned
(``dead`` mask, weight forced to 0) rather than spliced out; a full compile
compacts them away when the dead fraction grows too large.
:meth:`FlatPolicy.recompile` replays a :class:`~repro.core.policy.
PolicyEdit` journal suffix against the compiled form, and
:meth:`FlatPolicy.compute_delta` re-evaluates only the sibling groups
touched by a set of dirty leaves.

The object-tree :class:`~repro.core.fairshare.FairshareTree` API remains
available as a thin materialized view (:meth:`FlatFairshare.to_tree`) so
existing tests and figures are unaffected.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .distance import FairshareParameters
from .fairshare import FairshareNode, FairshareTree
from .policy import PolicyEdit, PolicyTree
from .vector import FairshareVector

__all__ = ["FlatPolicy", "FlatFairshare", "compute_fairshare_flat"]


class FlatPolicy:
    """A :class:`PolicyTree` compiled to parallel arrays.

    Compilation is the once-per-policy-epoch step; :meth:`compute` is the
    per-refresh hot path.  The compiled form is immutable — consumers hold
    references across refreshes, and the serve plane publishes snapshots
    over the same arrays.  :meth:`recompile` therefore never mutates in
    place: it returns a *new* FlatPolicy sharing every array the edits did
    not touch (weight-only edits share the entire layout, which is what
    keeps leaf row ids — and the serve plane's leaf-id generation — stable).
    """

    #: recompile gives up beyond this many journal edits (a full compile
    #: amortizes better than replaying a long history)
    MAX_EDITS = 256
    #: recompile refuses to grow the tombstone fraction beyond this; the
    #: caller's full compile compacts the dead rows away
    MAX_DEAD_FRACTION = 0.5

    __slots__ = (
        "n_nodes", "n_leaves", "n_groups", "n_dead", "max_depth",
        "parent", "depth", "weight", "group_id", "group_start", "seg_gid",
        "dead", "live_child_count", "child_gid", "root_gid",
        "names", "paths", "path_index",
        "levels", "leaf_index", "leaf_paths", "leaf_names", "leaf_slot",
        "leaf_levels", "by_name", "name_collisions",
        "_target_share", "_target_valid", "_gid_rows",
    )

    def __init__(self, policy: PolicyTree):
        names: List[str] = []
        paths: List[str] = []
        parent: List[int] = []
        depth: List[int] = []
        weight: List[float] = []
        group_id: List[int] = []
        group_start: List[int] = []
        child_count: List[int] = []
        child_gid: List[int] = []
        self.root_gid = -1

        # BFS: children of one parent land in one contiguous block, giving
        # sibling groups as reduceat segments.
        queue: List[Tuple[object, int]] = [(policy.root, -1)]
        head = 0
        while head < len(queue):
            node, idx = queue[head]
            head += 1
            children = list(node.children.values())  # type: ignore[attr-defined]
            if not children:
                continue
            gid = len(group_start)
            group_start.append(len(names))
            if idx >= 0:
                child_gid[idx] = gid
            else:
                self.root_gid = gid
            base_path = paths[idx] if idx >= 0 else ""
            base_depth = depth[idx] if idx >= 0 else 0
            for child in children:
                cidx = len(names)
                names.append(child.name)
                paths.append(base_path + "/" + child.name)
                parent.append(idx)
                depth.append(base_depth + 1)
                weight.append(float(child.weight))
                group_id.append(gid)
                child_count.append(len(child.children))
                child_gid.append(-1)
                queue.append((child, cidx))

        self.n_nodes = len(names)
        self.names = names
        self.paths = paths
        self.path_index: Dict[str, int] = {p: i for i, p in enumerate(paths)}
        self.parent = np.asarray(parent, dtype=np.int64)
        self.depth = np.asarray(depth, dtype=np.int64)
        self.weight = np.asarray(weight, dtype=np.float64)
        self.group_id = np.asarray(group_id, dtype=np.int64)
        self.group_start = np.asarray(group_start, dtype=np.int64)
        # fresh compiles have exactly one physical segment per logical group
        self.seg_gid = np.arange(len(group_start), dtype=np.int64)
        self.n_groups = len(group_start)
        self.dead = np.zeros(self.n_nodes, dtype=bool)
        self.n_dead = 0
        self.live_child_count = np.asarray(child_count, dtype=np.int64)
        self.child_gid = np.asarray(child_gid, dtype=np.int64)

        # bare-name resolution must match the object-tree services exactly:
        # first leaf in *pre-order* wins (Tree.leaves() traversal order)
        self.by_name: Dict[str, str] = {}
        self.name_collisions = 0
        for leaf in policy.leaves():
            if leaf.name in self.by_name:
                if self.by_name[leaf.name] != leaf.path:
                    self.name_collisions += 1
            else:
                self.by_name[leaf.name] = leaf.path

        self._derive()

    # -- shared derivation (fresh compile and recompile) ---------------------

    def _derive(self) -> None:
        """Compute everything that follows from the raw layout arrays:
        depth levels, leaf tables, path matrix, target shares."""
        alive = ~self.dead
        self.max_depth = int(self.depth[alive].max()) \
            if self.n_nodes and alive.any() else 0

        # node indices per depth level, for the level-wise usage roll-up
        self.levels = [
            np.nonzero(alive & (self.depth == d))[0]
            for d in range(1, self.max_depth + 1)
        ]

        self.leaf_index = np.nonzero(alive & (self.live_child_count == 0))[0]
        self.n_leaves = int(self.leaf_index.size)
        self.leaf_paths = [self.paths[i] for i in self.leaf_index]
        self.leaf_names = [self.names[i] for i in self.leaf_index]
        self.leaf_slot = {p: r for r, p in enumerate(self.leaf_paths)}

        # leaf row -> node indices along root->leaf path, -1 padded; built
        # by walking all leaves' parent chains in lock step (max_depth
        # vectorized passes instead of one Python loop per leaf)
        self.leaf_levels = np.full((self.n_leaves, self.max_depth), -1,
                                   dtype=np.int64)
        if self.n_leaves:
            rows = np.arange(self.n_leaves)
            col = self.depth[self.leaf_index] - 1
            cur = self.leaf_index.copy()
            active = col >= 0
            while active.any():
                self.leaf_levels[rows[active], col[active]] = cur[active]
                cur[active] = self.parent[cur[active]]
                col -= 1
                active &= (col >= 0) & (cur >= 0)

        # target shares depend only on the policy: precompute at compile
        # time (tombstones carry weight 0 and vanish from every group sum)
        if self.n_nodes:
            seg_sums = np.add.reduceat(self.weight, self.group_start)
            wsum = np.bincount(self.seg_gid, weights=seg_sums,
                               minlength=self.n_groups)[self.group_id]
            with np.errstate(divide="ignore", invalid="ignore"):
                self._target_share = np.where(wsum > 0.0,
                                              self.weight / wsum, 0.0)
        else:
            self._target_share = np.zeros(0, dtype=np.float64)
        self._target_valid = True
        self._gid_rows: Optional[List[np.ndarray]] = None

    def _gid_members(self) -> List[np.ndarray]:
        """Row indices per logical group (lazy; feeds :meth:`compute_delta`)."""
        if self._gid_rows is None:
            order = np.argsort(self.group_id, kind="stable")
            counts = np.bincount(self.group_id, minlength=self.n_groups)
            self._gid_rows = np.split(order, np.cumsum(counts)[:-1])
        return self._gid_rows

    def _group_usage(self, usage: np.ndarray) -> np.ndarray:
        """Per-logical-group usage sums (physical segments folded by gid)."""
        seg_sums = np.add.reduceat(usage, self.group_start)
        return np.bincount(self.seg_gid, weights=seg_sums,
                           minlength=self.n_groups)

    # -- per-refresh evaluation ---------------------------------------------

    def leaf_usage_vector(self, per_user_usage: Mapping[str, float]) -> np.ndarray:
        """Decayed usage totals as a dense per-leaf vector.

        Keys are leaf paths or bare leaf names (the UMS output format);
        later keys targeting the same leaf overwrite earlier ones, matching
        :func:`~repro.core.usage.build_usage_tree` assignment semantics.
        """
        vec = np.zeros(self.n_leaves, dtype=np.float64)
        for key, value in per_user_usage.items():
            path = key if key.startswith("/") else self.by_name.get(key)
            if path is None:
                continue
            slot = self.leaf_slot.get(path)
            if slot is not None:
                vec[slot] = float(value)
        return vec

    def _scores(self, params: FairshareParameters, usage: np.ndarray,
                usage_share: np.ndarray, rows: Optional[np.ndarray] = None
                ) -> Tuple[np.ndarray, np.ndarray]:
        """Priority and balance formulas over all nodes (or just ``rows``).

        Mirrors distance.combined_priority / distance.balance_score.
        """
        target = self._target_share if rows is None else self._target_share[rows]
        us = usage_share if rows is None else usage_share[rows]
        k = params.k
        absolute = np.clip(target - us, 0.0, target)
        with np.errstate(divide="ignore", invalid="ignore"):
            rel = np.where(target > 0.0, target / (target + us), 0.0)
        priority = k * absolute + (1.0 - k) * rel
        signed_abs = np.clip(0.5 + (target - us) / 2.0, 0.0, 1.0)
        rel_balance = np.where(target > 0.0, rel,
                               np.where(us == 0.0, 0.5, 0.0))
        balance = k * signed_abs + (1.0 - k) * rel_balance
        return priority, balance

    def compute(self, per_user_usage: Optional[Mapping[str, float]] = None,
                parameters: Optional[FairshareParameters] = None,
                leaf_usage: Optional[np.ndarray] = None) -> "FlatFairshare":
        """Evaluate one refresh: all node values in a handful of array ops."""
        params = parameters or FairshareParameters()
        if leaf_usage is None:
            leaf_usage = self.leaf_usage_vector(per_user_usage or {})
        usage = np.zeros(self.n_nodes, dtype=np.float64)
        usage[self.leaf_index] = leaf_usage
        # roll up, deepest level first (depth-1 nodes have the virtual root
        # as parent and need no propagation)
        for level_nodes in reversed(self.levels[1:]):
            np.add.at(usage, self.parent[level_nodes], usage[level_nodes])

        if self.n_nodes:
            gsum = self._group_usage(usage)
            usum = gsum[self.group_id]
        else:
            gsum = np.zeros(0)
            usum = np.zeros(0)
        with np.errstate(divide="ignore", invalid="ignore"):
            usage_share = np.where(usum > 0.0, usage / usum, 0.0)

        priority, balance = self._scores(params, usage, usage_share)
        return FlatFairshare(self, params, usage, usage_share, priority,
                             balance, group_usage_sum=gsum)

    def compute_delta(self, prev: "FlatFairshare",
                      dirty_rows: Sequence[int],
                      new_leaf_usage: Sequence[float],
                      parameters: Optional[FairshareParameters] = None,
                      extra_dirty_nodes: Optional[np.ndarray] = None
                      ) -> "FlatFairshare":
        """Re-evaluate only what a set of dirty leaves can have changed.

        ``dirty_rows`` are leaf rows (this layout's ``leaf_slot`` values)
        whose usage became ``new_leaf_usage``; ``extra_dirty_nodes`` are
        node rows whose *target* changed (weight-only recompiles).  Usage
        deltas are pushed up each dirty leaf's ancestor chain, then shares,
        priorities and balances are recomputed for exactly the logical
        sibling groups containing a touched node — every other row is
        carried over from ``prev`` untouched.

        ``self`` must share ``prev.flat``'s layout (be ``prev.flat`` itself
        or a weight-only clone of it); the caller guarantees this.
        """
        params = parameters or prev.parameters
        usage = prev.usage.copy()
        rows = np.asarray(dirty_rows, dtype=np.int64)
        touched_parts: List[np.ndarray] = []
        if rows.size:
            leaf_nodes = self.leaf_index[rows]
            delta = np.asarray(new_leaf_usage, dtype=np.float64) \
                - usage[leaf_nodes]
            chains = self.leaf_levels[rows]
            mask = chains >= 0
            np.add.at(usage, chains[mask],
                      np.broadcast_to(delta[:, None], chains.shape)[mask])
            touched_parts.append(chains[mask])
        if extra_dirty_nodes is not None and len(extra_dirty_nodes):
            touched_parts.append(np.asarray(extra_dirty_nodes, dtype=np.int64))

        gsum = prev.group_usage_sum.copy() \
            if prev.group_usage_sum is not None else self._group_usage(usage)
        usage_share = prev.usage_share.copy()
        priority = prev.priority.copy()
        balance = prev.balance.copy()

        touched_count = 0
        if touched_parts:
            touched = np.unique(np.concatenate(touched_parts))
            gids = np.unique(self.group_id[touched])
            members_by_gid = self._gid_members()
            member = np.concatenate([members_by_gid[g] for g in gids])
            touched_count = int(member.size)
            # group sums recomputed exactly from member usage (no drift
            # accumulation across refreshes at the group level)
            local = np.searchsorted(gids, self.group_id[member])
            gsum[gids] = np.bincount(local, weights=usage[member],
                                     minlength=gids.size)
            denom = gsum[self.group_id[member]]
            with np.errstate(divide="ignore", invalid="ignore"):
                usage_share[member] = np.where(denom > 0.0,
                                               usage[member] / denom, 0.0)
            priority[member], balance[member] = self._scores(
                params, usage, usage_share, rows=member)

        return FlatFairshare(self, params, usage, usage_share, priority,
                             balance, group_usage_sum=gsum,
                             touched_nodes=touched_count)

    # -- incremental recompilation (DESIGN.md §12) ---------------------------

    def _clone(self) -> "FlatPolicy":
        """Shallow copy sharing every attribute (copy-on-write substrate)."""
        new = object.__new__(FlatPolicy)
        for slot in FlatPolicy.__slots__:
            object.__setattr__(new, slot, getattr(self, slot))
        return new

    def recompile(self, policy: PolicyTree,
                  edits: Optional[Sequence[PolicyEdit]]
                  ) -> Optional[Tuple["FlatPolicy", Dict[str, object]]]:
        """Splice a journal suffix into the compiled form.

        Returns ``(new_flat, info)`` — ``info["layout_changed"]`` says
        whether leaf row numbering may have moved (structural edits) and
        ``info["target_dirty"]`` lists node rows whose target share changed
        (weight-only path) — or ``None`` when the edits are too structural
        to splice profitably and the caller should compile from scratch:
        unknown journal state, too many edits, excessive tombstone growth,
        bare-name ambiguity (pre-order first-wins semantics need the full
        tree), or inconsistencies between journal and layout.

        Weight-only suffixes share the *entire* layout with ``self`` (only
        the weight/target arrays are copied), so every consumer holding
        leaf rows — the serve plane's binary protocol above all — keeps
        its ids.
        """
        if edits is None or not self.n_nodes:
            return None
        if len(edits) > self.MAX_EDITS:
            return None
        if not edits:
            # epoch moved without tree edits (e.g. a PDS version bump):
            # the compiled form is still exact
            return self, {"layout_changed": False,
                          "target_dirty": np.zeros(0, dtype=np.int64)}
        if all(e.kind == "weight" for e in edits):
            return self._recompile_weights(policy, edits)
        if self.name_collisions:
            return None
        return self._recompile_structural(policy, edits)

    def _live_weight(self, policy: PolicyTree, edit: PolicyEdit) -> float:
        node = policy.find(edit.path)
        return float(node.weight) if node is not None \
            else float(edit.weight)  # type: ignore[attr-defined]

    def _recompile_weights(self, policy: PolicyTree,
                           edits: Sequence[PolicyEdit]
                           ) -> Optional[Tuple["FlatPolicy", Dict[str, object]]]:
        rows = []
        for e in edits:
            i = self.path_index.get(e.path)
            if i is None or self.dead[i]:
                return None
            rows.append(i)
        new = self._clone()
        new.weight = self.weight.copy()
        for e, i in zip(edits, rows):
            new.weight[i] = self._live_weight(policy, e)
        # renormalize only the touched sibling groups
        gids = np.unique(self.group_id[np.asarray(rows, dtype=np.int64)])
        members_by_gid = self._gid_members()
        member = np.concatenate([members_by_gid[g] for g in gids])
        new._target_share = self._target_share.copy()
        local = np.searchsorted(gids, self.group_id[member])
        wsum = np.bincount(local, weights=new.weight[member],
                           minlength=gids.size)[local]
        with np.errstate(divide="ignore", invalid="ignore"):
            new._target_share[member] = np.where(
                wsum > 0.0, new.weight[member] / wsum, 0.0)
        return new, {"layout_changed": False, "target_dirty": member}

    def _recompile_structural(self, policy: PolicyTree,
                              edits: Sequence[PolicyEdit]
                              ) -> Optional[Tuple["FlatPolicy", Dict[str, object]]]:
        n_old = self.n_nodes
        # copy-on-write working state: old rows as mutable array copies,
        # appended rows as plain lists glued on at the end
        weight = self.weight.copy()
        dead = self.dead.copy()
        lcc = self.live_child_count.copy()
        cgid = self.child_gid.copy()
        app: Dict[str, list] = {k: [] for k in (
            "names", "paths", "parent", "depth", "weight", "gid",
            "dead", "lcc", "cgid")}
        pindex = dict(self.path_index)
        by_name = dict(self.by_name)
        seg_start = self.group_start.tolist()
        seg_gid_l = self.seg_gid.tolist()
        n_groups = self.n_groups
        root_gid = self.root_gid
        n_dead = self.n_dead
        # adjacency over the old rows (lazy) + side table for appended ones
        adj: Optional[Tuple[np.ndarray, np.ndarray]] = None
        new_kids: Dict[int, List[int]] = {}

        def old_children(p: int) -> np.ndarray:
            nonlocal adj
            if adj is None:
                order = np.argsort(self.parent, kind="stable")
                adj = (self.parent[order.astype(np.int64)], order)
            lo = np.searchsorted(adj[0], p, side="left")
            hi = np.searchsorted(adj[0], p, side="right")
            return adj[1][lo:hi]

        def children_of(p: int) -> List[int]:
            return [int(c) for c in old_children(p)] + new_kids.get(p, [])

        def get_dead(i: int) -> bool:
            return app["dead"][i - n_old] if i >= n_old else bool(dead[i])

        def set_dead(i: int) -> None:
            nonlocal n_dead
            if i >= n_old:
                app["dead"][i - n_old] = True
            else:
                dead[i] = True
            n_dead += 1

        def get_lcc(i: int) -> int:
            return app["lcc"][i - n_old] if i >= n_old else int(lcc[i])

        def add_lcc(i: int, d: int) -> None:
            if i >= n_old:
                app["lcc"][i - n_old] += d
            else:
                lcc[i] += d

        def get_cgid(i: int) -> int:
            return app["cgid"][i - n_old] if i >= n_old else int(cgid[i])

        def set_cgid(i: int, g: int) -> None:
            nonlocal root_gid
            if i < 0:
                root_gid = g
            elif i >= n_old:
                app["cgid"][i - n_old] = g
            else:
                cgid[i] = g

        def get_path(i: int) -> str:
            return app["paths"][i - n_old] if i >= n_old else self.paths[i]

        def get_name(i: int) -> str:
            return app["names"][i - n_old] if i >= n_old else self.names[i]

        def get_depth(i: int) -> int:
            return app["depth"][i - n_old] if i >= n_old else int(self.depth[i])

        def set_weight(i: int, w: float) -> None:
            if i >= n_old:
                app["weight"][i - n_old] = w
            else:
                weight[i] = w

        name_clash = False

        def name_drop(i: int) -> None:
            name = get_name(i)
            if by_name.get(name) == get_path(i):
                del by_name[name]

        def name_claim(i: int) -> None:
            nonlocal name_clash
            name = get_name(i)
            if name in by_name:
                name_clash = True
            else:
                by_name[name] = get_path(i)

        def append_row(name: str, path: str, pid: int, w: float,
                       gid: int) -> int:
            row = n_old + len(app["names"])
            app["names"].append(name)
            app["paths"].append(path)
            app["parent"].append(pid)
            app["depth"].append(get_depth(pid) + 1 if pid >= 0 else 1)
            app["weight"].append(w)
            app["gid"].append(gid)
            app["dead"].append(False)
            app["lcc"].append(0)
            app["cgid"].append(-1)
            pindex[path] = row
            new_kids.setdefault(pid, []).append(row)
            # extend the previous segment when rows stay contiguous in the
            # same logical group, else open a new one-row segment
            if not (seg_gid_l and seg_gid_l[-1] == gid
                    and seg_start[-1] <= row - 1):
                seg_start.append(row)
                seg_gid_l.append(gid)
            return row

        def kill_subtree(root: int) -> None:
            stack = [root]
            while stack:
                i = stack.pop()
                if get_dead(i):
                    continue
                set_dead(i)
                set_weight(i, 0.0)
                pindex.pop(get_path(i), None)
                name_drop(i)
                stack.extend(children_of(i))

        def graft(root_row: int, live_node) -> None:
            """BFS-append ``live_node``'s children under ``root_row``."""
            nonlocal n_groups
            queue = [(root_row, live_node)]
            head = 0
            while head < len(queue):
                prow, pnode = queue[head]
                head += 1
                kids = list(pnode.children.values())
                if not kids:
                    continue
                gid = n_groups
                n_groups += 1
                set_cgid(prow, gid)
                base = get_path(prow)
                for child in kids:
                    crow = append_row(child.name, base + "/" + child.name,
                                      prow, float(child.weight), gid)
                    app["lcc"][crow - n_old] = len(child.children)
                    if not child.children:
                        name_claim(crow)
                    queue.append((crow, child))
                if prow >= n_old:
                    app["lcc"][prow - n_old] = len(kids)
                else:
                    lcc[prow] = len(kids)

        for e in edits:
            if e.kind == "weight":
                i = pindex.get(e.path)
                if i is None or get_dead(i):
                    return None
                set_weight(i, self._live_weight(policy, e))
            elif e.kind == "add":
                if e.path in pindex:
                    return None
                cut = e.path.rfind("/")
                parent_path = e.path[:cut] if cut > 0 else ""
                if parent_path:
                    pid = pindex.get(parent_path)
                    if pid is None or get_dead(pid):
                        return None
                else:
                    pid = -1
                gid = get_cgid(pid) if pid >= 0 else root_gid
                if gid < 0:
                    gid = n_groups
                    n_groups += 1
                    set_cgid(pid, gid)
                if pid >= 0 and get_lcc(pid) == 0:
                    name_drop(pid)  # the parent leaf just became internal
                row = append_row(e.path[cut + 1:], e.path, pid,
                                 self._live_weight(policy, e), gid)
                if pid >= 0:
                    add_lcc(pid, 1)
                name_claim(row)
            elif e.kind == "remove":
                i = pindex.get(e.path)
                if i is None:
                    return None
                if get_dead(i):
                    continue
                pid = int(self.parent[i]) if i < n_old \
                    else app["parent"][i - n_old]
                kill_subtree(i)
                if pid >= 0:
                    add_lcc(pid, -1)
                    if get_lcc(pid) == 0:
                        name_claim(pid)  # the parent became a leaf
            elif e.kind == "replace":
                i = pindex.get(e.path)
                if i is None or get_dead(i):
                    return None
                live = policy.find(e.path)
                set_weight(i, float(live.weight)  # type: ignore[attr-defined]
                           if live is not None else float(e.weight))
                had_children = get_lcc(i) > 0
                for c in children_of(i):
                    if not get_dead(c):
                        kill_subtree(c)
                if i >= n_old:
                    app["lcc"][i - n_old] = 0
                else:
                    lcc[i] = 0
                if live is not None and live.children:
                    if not had_children:
                        name_drop(i)  # leaf mount point gains children
                    graft(i, live)
                elif not had_children:
                    pass  # leaf stayed a leaf
                else:
                    name_claim(i)  # unmount: the mount point is a leaf now
            else:
                return None
            if name_clash:
                return None

        n_new = n_old + len(app["names"])
        if n_new == 0 or n_dead / n_new > self.MAX_DEAD_FRACTION:
            return None

        new = self._clone()
        new.n_nodes = n_new
        new.names = self.names + app["names"]
        new.paths = self.paths + app["paths"]
        new.path_index = pindex
        new.by_name = by_name
        new.name_collisions = 0
        new.parent = np.concatenate(
            [self.parent, np.asarray(app["parent"], dtype=np.int64)])
        new.depth = np.concatenate(
            [self.depth, np.asarray(app["depth"], dtype=np.int64)])
        new.weight = np.concatenate(
            [weight, np.asarray(app["weight"], dtype=np.float64)])
        new.group_id = np.concatenate(
            [self.group_id, np.asarray(app["gid"], dtype=np.int64)])
        new.dead = np.concatenate(
            [dead, np.asarray(app["dead"], dtype=bool)])
        new.n_dead = n_dead
        new.live_child_count = np.concatenate(
            [lcc, np.asarray(app["lcc"], dtype=np.int64)])
        new.child_gid = np.concatenate(
            [cgid, np.asarray(app["cgid"], dtype=np.int64)])
        new.group_start = np.asarray(seg_start, dtype=np.int64)
        new.seg_gid = np.asarray(seg_gid_l, dtype=np.int64)
        new.n_groups = n_groups
        new.root_gid = root_gid
        new._derive()
        return new, {"layout_changed": True, "target_dirty": None}

    # -- memory accounting ---------------------------------------------------

    def memory_bytes(self) -> int:
        """Approximate resident bytes of the compiled form.

        Array payloads are exact (``nbytes``); Python containers (path
        dicts, name lists) are estimated from container size plus string
        payloads.  Feeds the benchmark's bytes/user column.
        """
        total = sum(
            getattr(self, a).nbytes for a in (
                "parent", "depth", "weight", "group_id", "group_start",
                "seg_gid", "dead", "live_child_count", "child_gid",
                "leaf_index", "leaf_levels", "_target_share"))
        total += sum(a.nbytes for a in self.levels)
        total += sys.getsizeof(self.path_index) + sys.getsizeof(self.leaf_slot)
        total += sys.getsizeof(self.names) + sys.getsizeof(self.paths)
        total += sum(sys.getsizeof(p) for p in self.paths) * 2  # index keys
        total += sum(sys.getsizeof(n) for n in self.names)
        return int(total)


class FlatFairshare:
    """One refresh worth of fairshare values over a :class:`FlatPolicy`.

    Everything the services and projections consume — leaf vectors, path
    share products, priorities — is served from arrays; the object tree is
    materialized only on demand (:meth:`to_tree`).
    """

    __slots__ = ("flat", "parameters", "usage", "usage_share", "priority",
                 "balance", "group_usage_sum", "touched_nodes",
                 "_element_matrix", "_path_products")

    def __init__(self, flat: FlatPolicy, parameters: FairshareParameters,
                 usage: np.ndarray, usage_share: np.ndarray,
                 priority: np.ndarray, balance: np.ndarray,
                 group_usage_sum: Optional[np.ndarray] = None,
                 touched_nodes: Optional[int] = None):
        self.flat = flat
        self.parameters = parameters
        self.usage = usage
        self.usage_share = usage_share
        self.priority = priority
        self.balance = balance
        #: per-logical-group usage sums of this refresh — the carry state
        #: that makes the next :meth:`FlatPolicy.compute_delta` exact
        self.group_usage_sum = group_usage_sum
        #: node rows re-evaluated when this result came from a delta
        #: computation (None for full evaluations)
        self.touched_nodes = touched_nodes
        self._element_matrix: Optional[np.ndarray] = None
        self._path_products: Optional[Tuple[np.ndarray, np.ndarray]] = None

    @property
    def target_share(self) -> np.ndarray:
        return self.flat._target_share

    @property
    def leaf_paths(self) -> List[str]:
        return self.flat.leaf_paths

    @property
    def leaf_depths(self) -> np.ndarray:
        return self.flat.depth[self.flat.leaf_index]

    # -- vector extraction (all leaves at once) -----------------------------

    def element_matrix(self) -> np.ndarray:
        """``(n_leaves, max_depth)`` fairshare-vector elements.

        Row *r* holds leaf *r*'s path balances scaled to the vector
        resolution; levels below the leaf are padded with the balance point,
        so rows compare exactly like padded :class:`FairshareVector` tuples.
        """
        if self._element_matrix is None:
            flat = self.flat
            res = float(self.parameters.resolution)
            idx = np.maximum(flat.leaf_levels, 0)
            scores = np.clip(self.balance[idx], 0.0, 1.0) * res
            self._element_matrix = np.where(flat.leaf_levels >= 0, scores,
                                            self.parameters.balance_point)
        return self._element_matrix

    def path_products(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-leaf ``(target_total, usage_total)`` share products."""
        if self._path_products is None:
            flat = self.flat
            idx = np.maximum(flat.leaf_levels, 0)
            mask = flat.leaf_levels >= 0
            tt = np.where(mask, self.target_share[idx], 1.0).prod(axis=1)
            ut = np.where(mask, self.usage_share[idx], 1.0).prod(axis=1)
            self._path_products = (tt, ut)
        return self._path_products

    # -- point queries ------------------------------------------------------

    def node_priority(self, path: str) -> float:
        return float(self.priority[self.flat.path_index[path]])

    def priorities(self) -> Dict[str, float]:
        pr = self.priority[self.flat.leaf_index]
        return dict(zip(self.flat.leaf_paths, pr.tolist()))

    def vector(self, path: str) -> FairshareVector:
        row = self.flat.leaf_slot[path]
        depth = int(self.leaf_depths[row])
        elems = self.element_matrix()[row, :depth]
        return FairshareVector(elems.tolist(), self.parameters.resolution)

    def vectors(self) -> Dict[str, FairshareVector]:
        matrix = self.element_matrix()
        depths = self.leaf_depths
        res = self.parameters.resolution
        return {path: FairshareVector(matrix[r, :int(depths[r])].tolist(), res)
                for r, path in enumerate(self.flat.leaf_paths)}

    # -- memory accounting ---------------------------------------------------

    def memory_bytes(self) -> int:
        """Array payload bytes of this refresh result."""
        total = sum(a.nbytes for a in (self.usage, self.usage_share,
                                       self.priority, self.balance))
        if self.group_usage_sum is not None:
            total += self.group_usage_sum.nbytes
        if self._element_matrix is not None:
            total += self._element_matrix.nbytes
        return int(total)

    # -- object-tree view ---------------------------------------------------

    def to_tree(self) -> FairshareTree:
        """Materialize the classic :class:`FairshareTree` (thin view).

        Children are attached in row order per parent (the policy's
        original insertion order for freshly compiled layouts); tombstoned
        rows are skipped.
        """
        flat = self.flat
        out = FairshareTree(self.parameters)
        nodes: List[Optional[FairshareNode]] = []
        for i in range(flat.n_nodes):
            if flat.dead[i]:
                nodes.append(None)
                continue
            node = FairshareNode(
                flat.names[i],
                target_share=float(self.target_share[i]),
                usage_share=float(self.usage_share[i]),
                priority=float(self.priority[i]),
                balance=float(self.balance[i]),
            )
            nodes.append(node)
            parent = flat.parent[i]
            (out.root if parent < 0 else nodes[parent]).add_child(node)  # type: ignore[union-attr]
        return out


def compute_fairshare_flat(policy: PolicyTree,
                           per_user_usage: Optional[Mapping[str, float]] = None,
                           parameters: Optional[FairshareParameters] = None) -> FlatFairshare:
    """One-shot convenience: compile and evaluate in one call.

    Services that refresh repeatedly should keep the :class:`FlatPolicy`
    compiled across refreshes instead (the FCS does).
    """
    return FlatPolicy(policy).compute(per_user_usage, parameters)
