"""Projection of fairshare vectors to scalars in [0, 1] (paper Section III-C).

SLURM and Maui combine several job factors linearly, each a value in
``[0, 1]``.  A fairshare *vector* therefore has to be projected down to a
single float — and no projection can retain all four vector properties at
once (Table I).  Aequus ships three algorithms, selectable (and switchable
at run time):

``DictionaryOrdering``
    Vectors are ranked lexicographically (leftmost element first, i.e. a
    descending dictionary sort) and each is assigned an evenly spaced value
    by rank: three vectors yield 0.75, 0.50, 0.25.

``BitwiseVector``
    Each vector element is awarded N bits of entropy; the bits are merged
    most-significant-level-first into one number and rescaled to ``[0, 1]``.
    Depth and precision become finite (Table I ✗), but isolation and
    proportionality survive within the quantization.

``Percental``
    The user's *total* target share (product of shares down the path) minus
    the *total* usage share, rescaled to ``[0, 1]``.  Retains depth,
    precision, and proportionality but gives up subgroup isolation — the
    approach of SLURM prior to 2.5, and the configuration used in
    production and throughout the paper's evaluation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence

import numpy as np

from .fairshare import FairshareTree
from .vector import FairshareVector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (flat imports us not)
    from .flat import FlatFairshare

__all__ = [
    "Projection",
    "DictionaryOrderingProjection",
    "BitwiseVectorProjection",
    "PercentalProjection",
    "make_projection",
]


class Projection:
    """Base class: maps every user (leaf) of a fairshare tree to [0, 1]."""

    name: str = "abstract"

    def project(self, tree: FairshareTree) -> Dict[str, float]:
        raise NotImplementedError

    def project_flat(self, result: "FlatFairshare") -> Dict[str, float]:
        """Project from an array-backed refresh (:mod:`repro.core.flat`).

        The built-in projections override this with vectorized
        implementations; custom projections fall back to the object-tree
        path via the materialized view.
        """
        return self.project(result.to_tree())

    def project_flat_array(self, result: "FlatFairshare") -> np.ndarray:
        """Projected values as a float64 array aligned with
        ``result.leaf_paths``.

        The built-in projections compute this form directly (their dict
        surface is derived from it); custom projections fall back through
        their dict output.  The array surface lets consumers that hold
        results from several sites with one shared policy — the fairness
        recorder's cross-site divergence — compare values without any
        per-user dict traffic.
        """
        values = self.project_flat(result)
        return np.array([values[p] for p in result.leaf_paths],
                        dtype=np.float64)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class DictionaryOrderingProjection(Projection):
    """Rank-based projection: evenly spaced values by descending sort.

    Equal vectors receive equal values (they are indistinguishable to the
    scheduler, as they should be).
    """

    name = "dictionary"

    def project(self, tree: FairshareTree) -> Dict[str, float]:
        return self.project_vectors(tree.vectors())

    def project_flat(self, result: "FlatFairshare") -> Dict[str, float]:
        return dict(zip(result.leaf_paths,
                        self.project_flat_array(result).tolist()))

    def project_flat_array(self, result: "FlatFairshare") -> np.ndarray:
        """Rank all leaf rows at once via a columnar lexicographic sort.

        Rows of the element matrix are balance-point padded, so comparing
        them column-by-column is exactly the padded-vector comparison the
        object path performs pair-by-pair.
        """
        matrix = result.element_matrix()
        n, depth = matrix.shape
        if n == 0:
            return np.empty(0, dtype=np.float64)
        if depth == 0:
            # degenerate single-level-free tree: all vectors equal
            return np.full(n, n / (n + 1), dtype=np.float64)
        # np.lexsort treats the *last* key as primary; feed columns reversed
        # and flip for a descending (best-first) order
        order = np.lexsort(tuple(matrix[:, c] for c in range(depth - 1, -1, -1)))[::-1]
        ranked = matrix[order]
        differs = np.any(ranked[1:] != ranked[:-1], axis=1)
        # rank of a row = index of the first row of its tie group
        boundaries = np.concatenate(([0], np.nonzero(differs)[0] + 1))
        group = np.cumsum(np.concatenate(([0], differs.astype(np.int64))))
        values_sorted = (n - boundaries[group]) / (n + 1)
        values = np.empty(n, dtype=np.float64)
        values[order] = values_sorted
        return values

    def project_vectors(self, vectors: Mapping[str, FairshareVector]) -> Dict[str, float]:
        paths = list(vectors)
        if not paths:
            return {}
        n = len(paths)
        order = sorted(paths, key=lambda p: vectors[p], reverse=True)
        values: Dict[str, float] = {}
        rank = 0
        for i, path in enumerate(order):
            if i > 0 and vectors[path] != vectors[order[i - 1]]:
                rank = i
            values[path] = (n - rank) / (n + 1)
        return values


class BitwiseVectorProjection(Projection):
    """Fixed-entropy bit packing of vector elements.

    ``bits_per_level`` bits represent the balance at each level, merged with
    the top level at the most significant end.  The total entropy is capped
    at 52 bits (an IEEE-754 double's integer-exact mantissa — the paper
    merges into "a double data primitive"), which bounds the representable
    depth: ``max_levels = 52 // bits_per_level`` unless set lower.  Deeper
    vector levels are silently dropped — the Table I depth limitation.
    """

    name = "bitwise"

    def project_flat(self, result: "FlatFairshare") -> Dict[str, float]:
        return dict(zip(result.leaf_paths,
                        self.project_flat_array(result).tolist()))

    def project_flat_array(self, result: "FlatFairshare") -> np.ndarray:
        """Pack all leaves at once.

        Per-level quantized values stay below ``2**bits_per_level`` and the
        packed total below ``2**52``, so float64 accumulation is exact and
        matches the object path's Python-int packing bit for bit.
        """
        matrix = result.element_matrix()
        n, depth = matrix.shape
        if n == 0:
            return np.empty(0, dtype=np.float64)
        levels = self.max_levels
        quantum = (1 << self.bits_per_level) - 1
        resolution = float(result.parameters.resolution)
        balance = result.parameters.balance_point
        packed = np.zeros(n, dtype=np.float64)
        for i in range(levels):
            elem = matrix[:, i] if i < depth else np.full(n, balance)
            q = np.clip(np.rint(elem / resolution * quantum), 0, quantum)
            packed = packed * (quantum + 1) + q
        packed /= float((1 << (self.bits_per_level * levels)) - 1)
        return packed

    def __init__(self, bits_per_level: int = 16, max_levels: Optional[int] = None):
        if not 1 <= bits_per_level <= 52:
            raise ValueError("bits_per_level must lie in [1, 52]")
        self.bits_per_level = bits_per_level
        cap = 52 // bits_per_level
        self.max_levels = min(max_levels, cap) if max_levels is not None else cap
        if self.max_levels < 1:
            raise ValueError("configuration leaves no representable levels")

    def project(self, tree: FairshareTree) -> Dict[str, float]:
        return self.project_vectors(tree.vectors())

    def project_vectors(self, vectors: Mapping[str, FairshareVector]) -> Dict[str, float]:
        return {path: self.project_one(vec) for path, vec in vectors.items()}

    def project_one(self, vector: FairshareVector) -> float:
        levels = self.max_levels
        quantum = (1 << self.bits_per_level) - 1
        balance = vector.balance_point
        packed = 0
        for i in range(levels):
            elem = vector.elements[i] if i < vector.depth else balance
            q = int(round(elem / vector.resolution * quantum))
            packed = (packed << self.bits_per_level) | min(max(q, 0), quantum)
        return packed / float((1 << (self.bits_per_level * levels)) - 1)


class PercentalProjection(Projection):
    """Total-share difference projection (SLURM < 2.5 style).

    ``f = ((target_total - usage_total) + 1) / 2`` — the signed difference
    of products down the path, rescaled from ``[-1, 1]`` to ``[0, 1]`` so
    perfect balance maps to 0.5.
    """

    name = "percental"

    def project(self, tree: FairshareTree) -> Dict[str, float]:
        values: Dict[str, float] = {}
        for leaf in tree.leaves():
            path = leaf.path
            diff = tree.target_total_share(path) - tree.usage_total_share(path)
            values[path] = min(max((diff + 1.0) / 2.0, 0.0), 1.0)
        return values

    def project_flat(self, result: "FlatFairshare") -> Dict[str, float]:
        return dict(zip(result.leaf_paths,
                        self.project_flat_array(result).tolist()))

    def project_flat_array(self, result: "FlatFairshare") -> np.ndarray:
        target_total, usage_total = result.path_products()
        return np.clip((target_total - usage_total + 1.0) / 2.0, 0.0, 1.0)


_PROJECTIONS = {
    "dictionary": DictionaryOrderingProjection,
    "bitwise": BitwiseVectorProjection,
    "percental": PercentalProjection,
}


def make_projection(name: str, **kwargs) -> Projection:
    """Instantiate a projection by configuration name.

    The projection in use is a run-time configurable choice (paper Section
    III-C); schedulers construct it from a config string.
    """
    try:
        cls = _PROJECTIONS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown projection {name!r}; choose from {sorted(_PROJECTIONS)}") from None
    return cls(**kwargs)
