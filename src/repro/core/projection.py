"""Projection of fairshare vectors to scalars in [0, 1] (paper Section III-C).

SLURM and Maui combine several job factors linearly, each a value in
``[0, 1]``.  A fairshare *vector* therefore has to be projected down to a
single float — and no projection can retain all four vector properties at
once (Table I).  Aequus ships three algorithms, selectable (and switchable
at run time):

``DictionaryOrdering``
    Vectors are ranked lexicographically (leftmost element first, i.e. a
    descending dictionary sort) and each is assigned an evenly spaced value
    by rank: three vectors yield 0.75, 0.50, 0.25.

``BitwiseVector``
    Each vector element is awarded N bits of entropy; the bits are merged
    most-significant-level-first into one number and rescaled to ``[0, 1]``.
    Depth and precision become finite (Table I ✗), but isolation and
    proportionality survive within the quantization.

``Percental``
    The user's *total* target share (product of shares down the path) minus
    the *total* usage share, rescaled to ``[0, 1]``.  Retains depth,
    precision, and proportionality but gives up subgroup isolation — the
    approach of SLURM prior to 2.5, and the configuration used in
    production and throughout the paper's evaluation.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from .fairshare import FairshareTree
from .vector import FairshareVector

__all__ = [
    "Projection",
    "DictionaryOrderingProjection",
    "BitwiseVectorProjection",
    "PercentalProjection",
    "make_projection",
]


class Projection:
    """Base class: maps every user (leaf) of a fairshare tree to [0, 1]."""

    name: str = "abstract"

    def project(self, tree: FairshareTree) -> Dict[str, float]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class DictionaryOrderingProjection(Projection):
    """Rank-based projection: evenly spaced values by descending sort.

    Equal vectors receive equal values (they are indistinguishable to the
    scheduler, as they should be).
    """

    name = "dictionary"

    def project(self, tree: FairshareTree) -> Dict[str, float]:
        return self.project_vectors(tree.vectors())

    def project_vectors(self, vectors: Mapping[str, FairshareVector]) -> Dict[str, float]:
        paths = list(vectors)
        if not paths:
            return {}
        n = len(paths)
        order = sorted(paths, key=lambda p: vectors[p], reverse=True)
        values: Dict[str, float] = {}
        rank = 0
        for i, path in enumerate(order):
            if i > 0 and vectors[path] != vectors[order[i - 1]]:
                rank = i
            values[path] = (n - rank) / (n + 1)
        return values


class BitwiseVectorProjection(Projection):
    """Fixed-entropy bit packing of vector elements.

    ``bits_per_level`` bits represent the balance at each level, merged with
    the top level at the most significant end.  The total entropy is capped
    at 52 bits (an IEEE-754 double's integer-exact mantissa — the paper
    merges into "a double data primitive"), which bounds the representable
    depth: ``max_levels = 52 // bits_per_level`` unless set lower.  Deeper
    vector levels are silently dropped — the Table I depth limitation.
    """

    name = "bitwise"

    def __init__(self, bits_per_level: int = 16, max_levels: Optional[int] = None):
        if not 1 <= bits_per_level <= 52:
            raise ValueError("bits_per_level must lie in [1, 52]")
        self.bits_per_level = bits_per_level
        cap = 52 // bits_per_level
        self.max_levels = min(max_levels, cap) if max_levels is not None else cap
        if self.max_levels < 1:
            raise ValueError("configuration leaves no representable levels")

    def project(self, tree: FairshareTree) -> Dict[str, float]:
        return self.project_vectors(tree.vectors())

    def project_vectors(self, vectors: Mapping[str, FairshareVector]) -> Dict[str, float]:
        return {path: self.project_one(vec) for path, vec in vectors.items()}

    def project_one(self, vector: FairshareVector) -> float:
        levels = self.max_levels
        quantum = (1 << self.bits_per_level) - 1
        balance = vector.balance_point
        packed = 0
        for i in range(levels):
            elem = vector.elements[i] if i < vector.depth else balance
            q = int(round(elem / vector.resolution * quantum))
            packed = (packed << self.bits_per_level) | min(max(q, 0), quantum)
        return packed / float((1 << (self.bits_per_level * levels)) - 1)


class PercentalProjection(Projection):
    """Total-share difference projection (SLURM < 2.5 style).

    ``f = ((target_total - usage_total) + 1) / 2`` — the signed difference
    of products down the path, rescaled from ``[-1, 1]`` to ``[0, 1]`` so
    perfect balance maps to 0.5.
    """

    name = "percental"

    def project(self, tree: FairshareTree) -> Dict[str, float]:
        values: Dict[str, float] = {}
        for leaf in tree.leaves():
            path = leaf.path
            diff = tree.target_total_share(path) - tree.usage_total_share(path)
            values[path] = min(max((diff + 1.0) / 2.0, 0.0), 1.0)
        return values


_PROJECTIONS = {
    "dictionary": DictionaryOrderingProjection,
    "bitwise": BitwiseVectorProjection,
    "percental": PercentalProjection,
}


def make_projection(name: str, **kwargs) -> Projection:
    """Instantiate a projection by configuration name.

    The projection in use is a run-time configurable choice (paper Section
    III-C); schedulers construct it from a config string.
    """
    try:
        cls = _PROJECTIONS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown projection {name!r}; choose from {sorted(_PROJECTIONS)}") from None
    return cls(**kwargs)
