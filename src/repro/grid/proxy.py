"""Userspace TCP fault proxy: one impaired link of the grid testbed.

A :class:`LinkProxy` sits between one grid daemon's outbound USS
connection and its peer's listener: the harness points site *a*'s
transport at the proxy's port instead of *b*'s real one, and every byte
of the a→b exchange flows through two forwarding threads the proxy owns.
That position lets it misbehave on command, the way a WAN does:

* ``set_latency(base, jitter)`` — sleep before relaying each chunk
  (half-duplex per direction, so ordering within the stream holds);
* ``set_drop_rate(p)`` — with probability *p* per relayed chunk, cut the
  connection instead of forwarding.  TCP gives the transport a clean
  stream-or-nothing abstraction, so "packet loss" at this layer means
  *connection loss*: the in-flight publish disappears, the dialer
  reconnects with backoff, and the receiver's next sequence number shows
  a gap — precisely the path the resync protocol exists for;
* ``partition()`` / ``heal()`` — kill every live connection and refuse
  (accept-then-close) new ones until healed, i.e. a hard network split.

Everything is plain ``socket`` + ``threading`` on loopback: no root, no
tc/netem, no containers, so the full fault matrix runs in CI.  Counters
(``connections_total``, ``connections_killed``, ``bytes_forwarded``) are
plain ints read by the harness for BENCH reporting.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from typing import List, Optional, Tuple

__all__ = ["LinkProxy"]

_CHUNK = 64 * 1024


class LinkProxy:
    """A controllable TCP forwarder for one directed grid link."""

    def __init__(self, target_host: str, target_port: int,
                 listen_host: str = "127.0.0.1", listen_port: int = 0,
                 latency: float = 0.0, jitter: float = 0.0,
                 drop_rate: float = 0.0,
                 rng: Optional[random.Random] = None):
        self.target_host = target_host
        self.target_port = target_port
        self.listen_host = listen_host
        self._rng = rng if rng is not None else random.Random()
        self._latency = latency
        self._jitter = jitter
        self._drop_rate = drop_rate
        self._partitioned = False
        self._closed = False
        self._lock = threading.Lock()
        self._conns: List[Tuple[socket.socket, socket.socket]] = []
        self.connections_total = 0
        self.connections_killed = 0
        self.bytes_forwarded = 0
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((listen_host, listen_port))
        self._listener.listen(64)
        self.listen_port = self._listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"link-proxy:{self.listen_port}->{target_port}", daemon=True)
        self._accept_thread.start()

    # -- fault controls ------------------------------------------------------

    def set_latency(self, base: float, jitter: float = 0.0) -> None:
        """Added one-way delay per relayed chunk: ``base`` ± ``jitter``."""
        with self._lock:
            self._latency = max(0.0, base)
            self._jitter = max(0.0, jitter)

    def set_drop_rate(self, rate: float) -> None:
        """Per-chunk probability of cutting the connection mid-stream."""
        with self._lock:
            self._drop_rate = min(1.0, max(0.0, rate))

    def partition(self) -> None:
        """Split the link: kill live connections, refuse new ones."""
        with self._lock:
            self._partitioned = True
        self.kill_connections()

    def heal(self) -> None:
        """Restore the link; the dialing transport reconnects on its own."""
        with self._lock:
            self._partitioned = False

    @property
    def partitioned(self) -> bool:
        return self._partitioned

    def kill_connections(self) -> None:
        """Drop every live connection once (transient blip, not a split)."""
        with self._lock:
            conns, self._conns = self._conns, []
        for pair in conns:
            self.connections_killed += 1
            for sock in pair:
                _close(sock)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        _close(self._listener)
        self.kill_connections()
        self._accept_thread.join(5.0)

    # -- forwarding ----------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                client, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            if self._partitioned or self._closed:
                _close(client)
                continue
            try:
                upstream = socket.create_connection(
                    (self.target_host, self.target_port), timeout=5.0)
            except OSError:
                _close(client)
                continue
            self.connections_total += 1
            pair = (client, upstream)
            with self._lock:
                self._conns.append(pair)
            for src, dst in ((client, upstream), (upstream, client)):
                threading.Thread(target=self._pump, args=(pair, src, dst),
                                 name="link-proxy-pump", daemon=True).start()

    def _pump(self, pair: Tuple[socket.socket, socket.socket],
              src: socket.socket, dst: socket.socket) -> None:
        try:
            while True:
                data = src.recv(_CHUNK)
                if not data:
                    break
                with self._lock:
                    latency = self._latency
                    jitter = self._jitter
                    drop = self._drop_rate
                if drop and self._rng.random() < drop:
                    self.connections_killed += 1
                    break
                if latency or jitter:
                    delay = latency
                    if jitter:
                        delay += self._rng.uniform(-jitter, jitter)
                    if delay > 0:
                        time.sleep(delay)
                # count before the write: an observer woken by the bytes
                # arriving must already see them in the counter
                self.bytes_forwarded += len(data)
                dst.sendall(data)
        except OSError:
            pass
        finally:
            # either direction dying takes the whole pair down, so the
            # dialer sees a clean connection loss and re-dials
            with self._lock:
                if pair in self._conns:
                    self._conns.remove(pair)
            for sock in pair:
                _close(sock)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "partitioned" if self._partitioned else "up"
        return (f"<LinkProxy :{self.listen_port} -> "
                f"{self.target_host}:{self.target_port} {state}>")


def _close(sock: socket.socket) -> None:
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass
