"""Wire format for USS exchange frames between grid daemons.

A frame is a 4-byte big-endian payload length followed by that many bytes
of UTF-8 JSON (the same framing as the serve plane's protocol v1, so one
set of tooling can eyeball both).  The payload is an envelope::

    {"v": 1, "src": "uss:a", "dst": "uss:b",
     "type": "UsageDeltaMessage", "data": {...dataclass fields...}}

``src``/``dst`` are transport endpoint names (the USS registers
``uss:<site>``); ``type`` selects the dataclass and ``data`` carries its
fields verbatim — except :class:`UsageExchangeMessage.snapshot`, whose
integer bin keys JSON forces to strings and :func:`decode_frame` converts
back.

The length prefix is validated against ``MAX_FRAME_BYTES`` before the
payload is read, so a broken or adversarial peer cannot make a daemon
buffer an arbitrarily large frame.  Malformed payloads raise
:class:`WireError`; the transport counts and drops them rather than
letting one bad peer kill the receive loop.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Tuple

from ..services.messages import (UsageDeltaMessage, UsageExchangeMessage,
                                 UsageResyncRequest)

__all__ = ["GRID_WIRE_VERSION", "MAX_FRAME_BYTES", "WireError",
           "encode_frame", "decode_frame"]

GRID_WIRE_VERSION = 1
MAX_FRAME_BYTES = 16 * 1024 * 1024
_LEN = struct.Struct(">I")

#: the only payload classes allowed on the grid wire
_TYPES = {
    "UsageDeltaMessage": UsageDeltaMessage,
    "UsageExchangeMessage": UsageExchangeMessage,
    "UsageResyncRequest": UsageResyncRequest,
}


class WireError(ValueError):
    """A frame that cannot be decoded into a known USS message."""


def encode_frame(src: str, dst: str, message: Any) -> bytes:
    """Serialize one USS message into a length-prefixed frame."""
    name = type(message).__name__
    if name not in _TYPES:
        raise WireError(f"{name} is not a grid wire message")
    payload = json.dumps(
        {"v": GRID_WIRE_VERSION, "src": src, "dst": dst, "type": name,
         "data": message.__dict__},
        separators=(",", ":"), ensure_ascii=False).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(payload)} bytes exceeds cap")
    return _LEN.pack(len(payload)) + payload


def decode_frame(payload: bytes) -> Tuple[str, str, Any]:
    """Decode one frame payload into ``(src, dst, message)``."""
    try:
        envelope = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"undecodable frame: {exc}") from exc
    if not isinstance(envelope, dict):
        raise WireError("frame payload is not an object")
    name = envelope.get("type")
    cls = _TYPES.get(name)
    if cls is None:
        raise WireError(f"unknown message type {name!r}")
    data = envelope.get("data")
    if not isinstance(data, dict):
        raise WireError("missing data object")
    if cls is UsageExchangeMessage:
        # JSON stringified the integer bin keys of the dict-of-dict
        # snapshot; restore them so histogram application sees ints
        snapshot = data.get("snapshot") or {}
        data = dict(data, snapshot={
            user: {int(b): float(v) for b, v in bins.items()}
            for user, bins in snapshot.items()})
    try:
        message = cls(**data)
    except TypeError as exc:
        raise WireError(f"bad {name} fields: {exc}") from exc
    return str(envelope.get("src", "")), str(envelope.get("dst", "")), message


def frame_length(header: bytes) -> int:
    """Parse and validate the 4-byte length prefix."""
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"declared frame length {length} exceeds cap")
    return length
