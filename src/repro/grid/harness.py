"""Testbed-in-a-box: boot, break, and measure a real multi-daemon grid.

:class:`GridHarness` turns "run the paper's testbed" into one object: it
writes a shared policy spec, boots N ``aequus-repro grid-node``
subprocesses on loopback ports, and (by default) threads every directed
USS link through a :class:`~repro.grid.proxy.LinkProxy` owned by the
harness process — so tests and benchmarks can add latency, cut links,
partition sites, and kill/restart whole daemons while the survivors keep
serving.  Pure ``subprocess`` + loopback: no root, no containers, runs
in CI.

Observation goes through the front door only: each node's serve plane
(INFO for per-origin usage horizons and staleness, METRICS for the full
registry including the grid transport counters).  The harness never
reaches into a node's memory — whatever it can measure, an operator of a
real deployment can measure the same way.

Typical shape (see ``tests/grid`` and ``benchmarks/test_grid_scaling``)::

    spec = GridSpec(sites=3, users=30, exchange_interval=0.5)
    with GridHarness(spec) as grid:
        grid.wait_converged(max_staleness=5.0, timeout=30.0)
        grid.partition("a", "b")          # split one link pair
        ...
        grid.heal("a", "b")
        grid.kill("c"); grid.restart("c") # daemon crash + resync
        grid.wait_converged(max_staleness=5.0, timeout=30.0)
"""

from __future__ import annotations

import itertools
import os
import socket
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..obs.collector import FleetCollector
from ..serve.client import SyncAequusClient
from ..serve.daemon import build_grid_policy
from .proxy import LinkProxy

__all__ = ["GridSpec", "GridHarness", "parse_metrics"]


def _free_ports(count: int, host: str = "127.0.0.1") -> List[int]:
    """Ask the kernel for ``count`` distinct free TCP ports.

    All probe sockets stay open until every port is reserved — closing
    them one at a time lets the kernel hand the same ephemeral port out
    twice within a single grid boot, which surfaces as a node failing to
    bind a port the harness promised it.
    """
    sockets, ports = [], []
    try:
        for _ in range(count):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, 0))
            sockets.append(sock)
            ports.append(sock.getsockname()[1])
    finally:
        for sock in sockets:
            sock.close()
    return ports


def parse_metrics(text: str) -> Dict[str, float]:
    """Prometheus text exposition -> ``{'name{labels}': value}``.

    Label order inside the braces is preserved as the server printed it;
    callers match by prefix (``name{``) or sum families rather than
    reconstructing exact label strings.
    """
    out: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            key, value = line.rsplit(None, 1)
            out[key] = float(value)
        except ValueError:
            continue
    return out


@dataclass
class GridSpec:
    """Shape and tempo of one harness-booted grid."""

    sites: int = 3
    users: int = 30
    seed: int = 0
    #: jobs of seeded local usage per node (sliced per site, so every
    #: node holds usage its peers can only learn over the wire)
    usage_jobs: int = 5
    exchange_interval: float = 0.5
    histogram_interval: float = 5.0
    refresh_interval: float = 0.5
    tick_interval: float = 0.05
    time_factor: float = 1.0
    #: thread every directed USS link through a LinkProxy (the fault
    #: plane); False wires daemons directly for minimum-overhead benches
    proxies: bool = True
    latency: float = 0.0
    jitter: float = 0.0
    host: str = "127.0.0.1"
    #: seconds to wait for daemon boot / convergence poll steps
    boot_timeout: float = 30.0

    def site_names(self) -> List[str]:
        return [f"s{i}" for i in range(self.sites)]


class GridHarness:
    """Boot N grid daemons on loopback, with a fault plane per link."""

    def __init__(self, spec: GridSpec, workdir: Optional[str] = None,
                 collector: Optional[bool] = None,
                 collector_interval: float = 1.0):
        self.spec = spec
        self._own_workdir = workdir is None
        self.workdir = Path(workdir) if workdir else Path(
            tempfile.mkdtemp(prefix="aequus-grid-"))
        self.policy_path = self.workdir / "policy.conf"
        self.procs: Dict[str, subprocess.Popen] = {}
        self.uss_ports: Dict[str, int] = {}
        self.serve_ports: Dict[str, int] = {}
        #: (src, dst) -> the proxy src dials to reach dst's USS listener
        self.proxies: Dict[Tuple[str, str], LinkProxy] = {}
        self._clients: Dict[str, SyncAequusClient] = {}
        self._logs: Dict[str, object] = {}
        self._epoch: float = 0.0
        self._started = False
        #: fleet telemetry: collector=True boots a FleetCollector against
        #: every node's serve port once the grid is up, and the fault
        #: plane annotates partitions/heals/kills into its merged trace
        self._want_collector = bool(collector)
        self._collector_interval = collector_interval
        self.collector: Optional[FleetCollector] = None

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "GridHarness":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def start(self) -> "GridHarness":
        if self._started:
            return self
        self._started = True
        spec = self.spec
        names = spec.site_names()
        self.workdir.mkdir(parents=True, exist_ok=True)
        policy = build_grid_policy(spec.users, seed=spec.seed)
        self.policy_path.write_text(policy.dumps(), encoding="utf-8")
        ports = iter(_free_ports(2 * len(names), spec.host))
        for name in names:
            self.uss_ports[name] = next(ports)
            self.serve_ports[name] = next(ports)
        if spec.proxies:
            for src, dst in itertools.permutations(names, 2):
                proxy = LinkProxy(spec.host, self.uss_ports[dst],
                                  listen_host=spec.host,
                                  latency=spec.latency, jitter=spec.jitter)
                self.proxies[(src, dst)] = proxy
        # one shared wall-clock epoch: every node starts its virtual clock
        # at (wall - epoch) * factor, so cross-daemon staleness reads true
        self._epoch = time.time()
        for name in names:
            self._spawn(name)
        self.wait_ready()
        if self._want_collector:
            self.collector = FleetCollector(
                {name: (spec.host, self.serve_ports[name])
                 for name in names},
                interval=self._collector_interval,
                virtual_epoch=self._epoch).start()
        return self

    def _peer_addr(self, src: str, dst: str) -> Tuple[str, int]:
        proxy = self.proxies.get((src, dst))
        if proxy is not None:
            return proxy.listen_host, proxy.listen_port
        return self.spec.host, self.uss_ports[dst]

    def _spawn(self, name: str) -> None:
        spec = self.spec
        names = spec.site_names()
        index = names.index(name)
        cmd = [sys.executable, "-m", "repro.cli", "grid-node",
               "--site", name,
               "--policy", str(self.policy_path),
               "--listen-host", spec.host,
               "--listen-port", str(self.uss_ports[name]),
               "--host", spec.host,
               "--port", str(self.serve_ports[name]),
               "--site-index", str(index),
               "--site-count", str(spec.sites),
               "--usage-jobs", str(spec.usage_jobs),
               "--seed", str(spec.seed),
               "--exchange-interval", str(spec.exchange_interval),
               "--histogram-interval", str(spec.histogram_interval),
               "--refresh-interval", str(spec.refresh_interval),
               "--tick-interval", str(spec.tick_interval),
               "--time-factor", str(spec.time_factor),
               "--virtual-epoch", repr(self._epoch)]
        for peer in names:
            if peer == name:
                continue
            host, port = self._peer_addr(name, peer)
            cmd += ["--peer", f"{peer}={host}:{port}"]
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        log = open(self.workdir / f"{name}.log", "ab")
        self._logs[name] = log
        self.procs[name] = subprocess.Popen(
            cmd, env=env, stdout=log, stderr=subprocess.STDOUT)

    def wait_ready(self, timeout: Optional[float] = None) -> None:
        """Block until every daemon answers PING on its serve port."""
        deadline = time.monotonic() + (timeout or self.spec.boot_timeout)
        for name in list(self.procs):
            while True:
                proc = self.procs[name]
                if proc.poll() is not None:
                    raise RuntimeError(
                        f"grid node {name!r} exited with {proc.returncode} "
                        f"during boot (log: {self.workdir / (name + '.log')})")
                try:
                    self.client(name).ping()
                    break
                except (ConnectionError, OSError):
                    self._drop_client(name)
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"grid node {name!r} not serving within "
                        f"{timeout or self.spec.boot_timeout:.0f}s")
                time.sleep(0.1)

    def stop(self) -> None:
        if not self._started:
            return
        self._started = False
        if self.collector is not None:
            self.collector.stop()
            self.collector = None
        for name in list(self._clients):
            self._drop_client(name)
        for name, proc in self.procs.items():
            if proc.poll() is None:
                proc.terminate()
        for name, proc in self.procs.items():
            try:
                proc.wait(10.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(10.0)
        self.procs.clear()
        for proxy in self.proxies.values():
            proxy.close()
        self.proxies.clear()
        for log in self._logs.values():
            log.close()
        self._logs.clear()

    # -- clients -------------------------------------------------------------

    def client(self, site: str) -> SyncAequusClient:
        client = self._clients.get(site)
        if client is None:
            client = SyncAequusClient(self.spec.host, self.serve_ports[site],
                                      timeout=5.0, retries=1)
            self._clients[site] = client
        return client

    def _drop_client(self, site: str) -> None:
        client = self._clients.pop(site, None)
        if client is not None:
            try:
                client.close()
            except Exception:
                pass

    # -- fault plane ---------------------------------------------------------

    def _note_fault(self, name: str, **args) -> None:
        if self.collector is not None:
            self.collector.note_event(name, **args)

    def partition(self, a: str, b: str) -> None:
        """Cut both directions of the a<->b link (requires proxies)."""
        self._link(a, b).partition()
        self._link(b, a).partition()
        self._note_fault("fault.partition", a=a, b=b)

    def heal(self, a: str, b: str) -> None:
        self._link(a, b).heal()
        self._link(b, a).heal()
        self._note_fault("fault.heal", a=a, b=b)

    def _link(self, src: str, dst: str) -> LinkProxy:
        try:
            return self.proxies[(src, dst)]
        except KeyError:
            raise RuntimeError(
                "fault injection needs GridSpec(proxies=True)") from None

    def set_link_latency(self, src: str, dst: str, base: float,
                         jitter: float = 0.0) -> None:
        self._link(src, dst).set_latency(base, jitter)

    def kill(self, site: str, grace: float = 0.0) -> None:
        """Stop one daemon (SIGTERM, escalating to SIGKILL)."""
        proc = self.procs[site]
        self._drop_client(site)
        if proc.poll() is None:
            self._note_fault("fault.kill", site=site)
            proc.terminate()
            try:
                proc.wait(grace if grace > 0 else 5.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(10.0)

    def restart(self, site: str) -> None:
        """Boot a fresh incarnation of a killed daemon on the same ports.

        The new process mints a new USS boot id; peers detect the
        incarnation change on its first publish and resync, which is the
        recovery path the restart tests pin down.
        """
        self.kill(site)
        self._spawn(site)
        self.wait_ready()
        self._note_fault("fault.restart", site=site)

    # -- measurement ---------------------------------------------------------

    def info(self, site: str) -> Dict:
        return self.client(site).info().get("info", {})

    def staleness(self, site: str) -> Dict[str, float]:
        """Per-origin usage staleness as this site's FCS reports it."""
        horizons = self.info(site).get("usage_horizons") or {}
        return {origin: float(entry.get("staleness", float("inf")))
                for origin, entry in horizons.items()}

    def remote_staleness(self, site: str) -> Dict[str, float]:
        return {origin: lag for origin, lag in self.staleness(site).items()
                if origin and origin != site}

    def metrics(self, site: str) -> Dict[str, float]:
        return parse_metrics(self.client(site).metrics())

    def metric_sum(self, site: str, family: str) -> float:
        """Sum one metric family across all its label combinations."""
        values = self.metrics(site)
        return sum(v for k, v in values.items()
                   if k == family or k.startswith(family + "{"))

    def wire_bytes(self, site: str) -> float:
        """Modeled exchange payload bytes this site has put on the wire."""
        return self.metric_sum(site, "aequus_network_payload_bytes_total")

    def converged(self, max_staleness: float,
                  expect_origins: Optional[int] = None) -> bool:
        """Every live site sees every peer origin fresher than the bound."""
        expected = self.spec.sites - 1 if expect_origins is None \
            else expect_origins
        for site in self.spec.site_names():
            proc = self.procs.get(site)
            if proc is None or proc.poll() is not None:
                continue  # a deliberately killed node does not gate
            try:
                remote = self.remote_staleness(site)
            except (ConnectionError, OSError):
                return False
            if len(remote) < expected:
                return False
            if any(lag > max_staleness for lag in remote.values()):
                return False
        return True

    def wait_converged(self, max_staleness: float, timeout: float = 30.0,
                       expect_origins: Optional[int] = None) -> float:
        """Poll until :meth:`converged`; returns seconds waited."""
        start = time.monotonic()
        deadline = start + timeout
        while True:
            if self.converged(max_staleness, expect_origins):
                return time.monotonic() - start
            if time.monotonic() > deadline:
                lags = {site: self.remote_staleness(site)
                        for site in self.spec.site_names()
                        if self.procs.get(site) is not None
                        and self.procs[site].poll() is None}
                raise TimeoutError(
                    f"grid not converged to {max_staleness:.1f}s within "
                    f"{timeout:.0f}s: {lags}")
            time.sleep(0.2)

    def staleness_samples(self, duration: float,
                          interval: float = 0.25) -> List[float]:
        """Sample every live site's worst remote staleness for a window."""
        samples: List[float] = []
        deadline = time.monotonic() + duration
        while time.monotonic() < deadline:
            for site in self.spec.site_names():
                proc = self.procs.get(site)
                if proc is None or proc.poll() is not None:
                    continue
                try:
                    remote = self.remote_staleness(site)
                except (ConnectionError, OSError):
                    continue
                if remote:
                    samples.append(max(remote.values()))
            time.sleep(interval)
        return samples
