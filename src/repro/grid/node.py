"""One grid daemon: a full site stack whose USS speaks TCP to its peers.

``aequus-repro grid-node`` is what the harness boots N times: it builds
the standard :class:`~repro.services.site.AequusSite` stack, but with a
:class:`~repro.grid.transport.TcpUssTransport` where the in-process sim
bus would be, and puts the usual serve plane in front of it — so the
harness (and any operator) observes a grid node exactly like a
single-site aequusd: INFO for usage horizons and staleness, METRICS for
the whole stack including the grid transport counters.

Clock alignment: every daemon runs its own discrete-event engine, ticked
from wall time.  Staleness is ``engine.now - horizon`` with the horizon
stamped by the *sending* site, so cross-daemon readings are only
meaningful if all engines agree on "now".  The harness passes one shared
``--virtual-epoch`` (a wall-clock timestamp); each node starts its engine
at ``(wall_now - epoch) * time_factor``, aligning the fleet's virtual
clocks to within process-spawn skew.

Seeded usage is sliced by node: with ``--site-index i`` of
``--site-count n``, the node records jobs for leaf users whose position
is congruent to *i* mod *n*.  Every node then holds usage no other node
has, so globally converged priorities are achievable only by actually
exchanging over the wire — the property the grid tests assert.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

import numpy as np

from ..core.policy import PolicyTree, parse_policy
from ..core.usage import UsageRecord
from ..obs.registry import MetricsRegistry
from ..serve.daemon import AequusDaemon
from ..services.site import AequusSite, SiteConfig
from ..sim.engine import SimulationEngine
from .transport import TcpUssTransport

__all__ = ["GridNode", "build_node", "run_node", "parse_peer"]


def parse_peer(spec: str) -> Tuple[str, str, int]:
    """Parse one ``--peer site=host:port`` argument."""
    try:
        site, addr = spec.split("=", 1)
        host, port = addr.rsplit(":", 1)
        return site.strip(), host.strip(), int(port)
    except ValueError as exc:
        raise ValueError(f"bad peer spec {spec!r} "
                         "(expected site=host:port)") from exc


class GridNode:
    """One wired grid daemon: engine + TCP USS transport + serve plane."""

    def __init__(self, engine: SimulationEngine, site: AequusSite,
                 transport: TcpUssTransport, daemon: AequusDaemon):
        self.engine = engine
        self.site = site
        self.transport = transport
        self.daemon = daemon
        self._stopped = False

    def start(self) -> "GridNode":
        self.daemon.start()
        return self

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        self.daemon.stop()
        self.transport.close()

    @property
    def serve_port(self) -> int:
        return self.daemon.port

    @property
    def uss_port(self) -> int:
        return self.transport.port


def build_node(site_name: str, policy: PolicyTree,
               peers: List[Tuple[str, str, int]],
               listen_host: str = "127.0.0.1", listen_port: int = 0,
               serve_host: str = "127.0.0.1", serve_port: int = 0,
               config: Optional[SiteConfig] = None,
               virtual_epoch: Optional[float] = None,
               time_factor: float = 1.0,
               tick_interval: float = 0.1,
               site_index: int = 0, site_count: int = 1,
               usage_jobs: int = 0, seed: int = 0) -> GridNode:
    """Assemble one grid daemon (not yet started)."""
    start = 0.0
    if virtual_epoch is not None:
        start = max(0.0, (time.time() - virtual_epoch) * time_factor)
    engine = SimulationEngine(start_time=start)
    registry = MetricsRegistry(constant_labels={"site": site_name},
                               clock=lambda: engine.now)
    transport = TcpUssTransport(site_name, host=listen_host,
                                port=listen_port, registry=registry)
    transport.start()
    for peer_site, host, port in peers:
        transport.add_peer(f"uss:{peer_site}", host, port)
    site = AequusSite(site_name, engine, transport, policy=policy,
                      config=config or SiteConfig(), registry=registry)
    for peer_site, _host, _port in peers:
        site.uss.add_peer(peer_site)
    if usage_jobs:
        _seed_usage(site, policy, site_index=site_index,
                    site_count=site_count, jobs=usage_jobs, seed=seed)
    daemon = AequusDaemon(engine, site, host=serve_host, port=serve_port,
                          tick_interval=tick_interval,
                          time_factor=time_factor,
                          virtual_epoch=virtual_epoch)
    return GridNode(engine, site, transport, daemon)


def _seed_usage(site: AequusSite, policy: PolicyTree, site_index: int,
                site_count: int, jobs: int, seed: int) -> None:
    """Record seeded jobs for this node's slice of the user population."""
    rng = np.random.default_rng(seed + site_index)
    mine = [path for i, path in enumerate(sorted(policy.leaf_paths()))
            if i % max(1, site_count) == site_index]
    now = site.engine.now
    for n in range(jobs):
        if not mine:
            break
        path = mine[int(rng.integers(0, len(mine)))]
        duration = float(rng.integers(60, 36_000))
        site.uss.record_job(UsageRecord(
            user=path.rsplit("/", 1)[-1], site=site.name,
            start=max(0.0, now - duration), end=now))


def run_node(args) -> int:
    """CLI handler for ``grid-node`` (one daemon, runs until signalled)."""
    with open(args.policy, "r", encoding="utf-8") as fh:
        policy = parse_policy(fh.read())
    peers = [parse_peer(spec) for spec in (args.peer or [])]
    config = SiteConfig(
        histogram_interval=args.histogram_interval,
        uss_exchange_interval=args.exchange_interval,
        ums_refresh_interval=args.refresh_interval,
        fcs_refresh_interval=args.refresh_interval,
    )
    node = build_node(
        args.site, policy, peers,
        listen_host=args.listen_host, listen_port=args.listen_port,
        serve_host=args.host, serve_port=args.port,
        config=config,
        virtual_epoch=args.virtual_epoch,
        time_factor=args.time_factor,
        tick_interval=args.tick_interval,
        site_index=args.site_index, site_count=args.site_count,
        usage_jobs=args.usage_jobs, seed=args.seed)
    node.start()
    print(f"grid-node: site {args.site!r} uss on "
          f"{args.listen_host}:{node.uss_port} serving on "
          f"{args.host}:{node.serve_port} peers={len(peers)}", flush=True)
    try:
        import signal

        def _terminate(signum, frame):
            signal.signal(signal.SIGTERM, signal.SIG_IGN)
            raise KeyboardInterrupt

        signal.signal(signal.SIGTERM, _terminate)
        while True:
            time.sleep(3600.0)
    except KeyboardInterrupt:
        print("grid-node: stopping", flush=True)
    finally:
        node.stop()
    return 0
