"""TCP peer transport: the USS exchange over real sockets.

One :class:`TcpUssTransport` per daemon: it binds a listener for inbound
exchange traffic and keeps one persistent outbound connection per peer,
re-dialled with capped exponential backoff (full jitter, like the serve
client) whenever it breaks.  The asyncio machinery runs on a private loop
thread; the two thread boundaries are explicit and narrow:

* :meth:`send` (engine thread) encodes the frame, accounts it, and hands
  the bytes to the peer's bounded outbound queue via
  ``call_soon_threadsafe`` — when the backlog is full (peer down longer
  than the queue absorbs) the frame is *dropped and counted*, which is
  exactly the loss the USS protocol's sequence numbers and resync
  requests repair;
* inbound frames are decoded on the loop thread and buffered; the engine
  thread delivers them to the registered USS handler via :meth:`pump`
  (the daemon tick loop pumps before advancing the engine), so every
  histogram mutation stays on the thread that owns it.

Accounting is two-layered.  ``stats`` is a standard
:class:`~repro.services.network.NetworkStats` fed with the *modeled*
wire cost (``wire_entries()``/``wire_bytes()``), keeping BENCH numbers
comparable with the sim plane; the ``aequus_grid_*`` series add the
transport truth — real frame bytes per peer and direction, reconnects,
dropped frames by reason, link up/down — all in the site registry so the
serve plane's METRICS op exposes the whole grid plane to Prometheus.
"""

from __future__ import annotations

import asyncio
import random
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, Optional, Tuple

from ..obs import trace
from ..obs.registry import MetricsRegistry
from ..services.network import NetworkStats
from ..services.transport import UssTransport
from .wire import WireError, decode_frame, encode_frame, frame_length

__all__ = ["TcpUssTransport"]


class _Peer:
    """Per-peer outbound state (owned by the loop thread after start)."""

    __slots__ = ("endpoint", "host", "port", "queue", "task", "connected",
                 "ever_connected")

    def __init__(self, endpoint: str, host: str, port: int):
        self.endpoint = endpoint
        self.host = host
        self.port = port
        self.queue: Optional[asyncio.Queue] = None
        self.task: Optional[asyncio.Task] = None
        self.connected = threading.Event()
        self.ever_connected = False


class TcpUssTransport(UssTransport):
    """Length-prefixed TCP implementation of the USS transport seam."""

    def __init__(self, site: str, host: str = "127.0.0.1", port: int = 0,
                 registry: Optional[MetricsRegistry] = None,
                 max_backlog: int = 512,
                 reconnect_base: float = 0.05,
                 reconnect_cap: float = 2.0,
                 rng: Optional[random.Random] = None):
        self.site = site
        self.host = host
        self._port = port
        self.max_backlog = max_backlog
        self.reconnect_base = reconnect_base
        self.reconnect_cap = reconnect_cap
        self._rng = rng if rng is not None else random.Random()
        self.registry = registry if registry is not None else MetricsRegistry(
            constant_labels={"site": site, "component": "grid"})
        self.stats = NetworkStats(registry=self.registry)
        self._peers: Dict[str, _Peer] = {}
        self._handlers: Dict[str, Callable[[Any], None]] = {}
        #: inbound (dst, message) pairs awaiting pump; deque ops are atomic
        self._inbound: Deque[Tuple[str, Any]] = deque()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._closed = False
        # -- grid-plane series (satellite: visible through METRICS) --------
        self._reconnects = self.registry.counter(
            "aequus_grid_reconnects_total",
            "Outbound connections re-established per peer (first connect "
            "not counted)", ("peer",))
        self._connect_failures = self.registry.counter(
            "aequus_grid_connect_failures_total",
            "Failed outbound connection attempts per peer", ("peer",))
        self._frames = self.registry.counter(
            "aequus_grid_frames_total",
            "Exchange frames by direction", ("direction",))
        self._frames_dropped = self.registry.counter(
            "aequus_grid_frames_dropped_total",
            "Frames lost at the transport layer by cause", ("reason",))
        self._peer_bytes = self.registry.counter(
            "aequus_grid_peer_bytes_total",
            "Real framed bytes on the wire per peer and direction",
            ("peer", "direction"))
        self._link_up = self.registry.gauge(
            "aequus_grid_link_up",
            "1 while the outbound connection to a peer is established",
            ("peer",))
        # materialize the enumerable children now so a scrape shows every
        # series from the first METRICS call, zeros included — dashboards
        # and the harness's convergence checks key off their presence
        for direction in ("in", "out", "loopback"):
            self._frames.labels(direction=direction)
        for reason in ("backlog", "send_error", "decode_error",
                       "unknown_dst", "encode_error", "closed",
                       "not_started"):
            self._frames_dropped.labels(reason=reason)

    # -- lifecycle ----------------------------------------------------------

    @property
    def port(self) -> int:
        return self._port

    def start(self, timeout: float = 10.0) -> "TcpUssTransport":
        """Bind the listener and start the loop thread (resolves port 0)."""
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name=f"grid-uss:{self.site}", daemon=True)
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("grid transport thread failed to start")
        if self._startup_error is not None:
            raise RuntimeError(
                f"grid transport failed to bind {self.host}:{self._port}"
            ) from self._startup_error
        return self

    def _run(self) -> None:
        assert self._loop is not None
        asyncio.set_event_loop(self._loop)
        try:
            self._server = self._loop.run_until_complete(
                asyncio.start_server(self._handle_inbound, self.host,
                                     self._port))
            self._port = self._server.sockets[0].getsockname()[1]
        except BaseException as exc:  # bind failure
            self._startup_error = exc
            self._started.set()
            return
        # peers added before start get their sender tasks here
        for peer in self._peers.values():
            self._spawn_sender(peer)
        self._started.set()
        try:
            self._loop.run_forever()
        finally:
            for peer in self._peers.values():
                if peer.task is not None:
                    peer.task.cancel()
            if self._server is not None:
                self._server.close()
            pending = [t for t in asyncio.all_tasks(self._loop)
                       if not t.done()]
            for task in pending:
                task.cancel()
            if pending:
                self._loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
            self._loop.run_until_complete(self._loop.shutdown_asyncgens())
            self._loop.close()

    def close(self) -> None:
        """Stop the loop thread and drop every connection (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._loop is not None and self._thread is not None \
                and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(10.0)
        self._thread = None
        self._loop = None
        for peer in self._peers.values():
            peer.connected.clear()

    # -- topology -----------------------------------------------------------

    def add_peer(self, endpoint: str, host: str, port: int) -> None:
        """Declare a peer endpoint (``uss:<site>``) and its address."""
        if endpoint in self._peers:
            raise ValueError(f"peer {endpoint!r} already added")
        peer = _Peer(endpoint, host, port)
        self._peers[endpoint] = peer
        # pre-create this peer's series (visible at zero; see __init__)
        self._reconnects.labels(peer=endpoint)
        self._connect_failures.labels(peer=endpoint)
        self._link_up.labels(peer=endpoint).set(0)
        for direction in ("in", "out"):
            self._peer_bytes.labels(peer=endpoint, direction=direction)
        if self._loop is not None and self._started.is_set() \
                and self._startup_error is None:
            self._loop.call_soon_threadsafe(self._spawn_sender, peer)

    def peers(self) -> Dict[str, Tuple[str, int]]:
        return {name: (p.host, p.port) for name, p in self._peers.items()}

    def connect(self, name: str, handler: Callable[[Any], None]) -> None:
        if name in self._handlers:
            raise ValueError(f"endpoint {name!r} already connected")
        self._handlers[name] = handler

    def disconnect(self, name: str) -> None:
        self._handlers.pop(name, None)

    def wait_connected(self, timeout: float = 10.0) -> bool:
        """Block until every declared peer link is up (tests, boot sync)."""
        deadline = time.monotonic() + timeout
        for peer in self._peers.values():
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not peer.connected.wait(remaining):
                return False
        return True

    # -- sending (engine thread) -------------------------------------------

    def send(self, src: str, dst: str, message: Any) -> bool:
        tctx = getattr(message, "tctx", None)
        if tctx is None:
            return self._send(src, dst, message)
        # the wire hop of the causal chain: same trace id as the origin's
        # uss.publish, recording the frame leaving this process
        with trace.span("grid.frame", trace=tctx.get("id"),
                        origin=tctx.get("origin"), src=src, dst=dst) as sp:
            ok = self._send(src, dst, message)
            if sp is not None:
                sp["sent"] = ok
            return ok

    def _send(self, src: str, dst: str, message: Any) -> bool:
        self.stats.record_send(src, dst)
        self.stats.record_payload(message)
        if self._closed:
            self.stats.dropped += 1
            self._frames_dropped.labels(reason="closed").inc()
            return False
        if dst in self._handlers:
            # loopback delivery (a daemon talking to itself in tests):
            # same buffered path as remote traffic, delivered at pump
            self._inbound.append((dst, message))
            self._frames.labels(direction="loopback").inc()
            return True
        peer = self._peers.get(dst)
        if peer is None:
            self.stats.dropped += 1
            self._frames_dropped.labels(reason="unknown_dst").inc()
            return False
        try:
            frame = encode_frame(src, dst, message)
        except WireError:
            self.stats.dropped += 1
            self._frames_dropped.labels(reason="encode_error").inc()
            return False
        loop = self._loop
        if loop is None or not self._started.is_set():
            self.stats.dropped += 1
            self._frames_dropped.labels(reason="not_started").inc()
            return False
        loop.call_soon_threadsafe(self._enqueue_frame, peer, frame)
        self._frames.labels(direction="out").inc()
        return True

    def _enqueue_frame(self, peer: _Peer, frame: bytes) -> None:
        # loop thread: the queue exists once the sender task was spawned
        if peer.queue is None or self._closed:
            self.stats.dropped += 1
            self._frames_dropped.labels(reason="closed").inc()
            return
        try:
            peer.queue.put_nowait(frame)
        except asyncio.QueueFull:
            # peer has been unreachable longer than the backlog absorbs;
            # drop-and-count — seq gaps at the receiver trigger resync
            self.stats.dropped += 1
            self._frames_dropped.labels(reason="backlog").inc()

    # -- loop-thread internals ----------------------------------------------

    def _spawn_sender(self, peer: _Peer) -> None:
        if peer.queue is None:
            peer.queue = asyncio.Queue(self.max_backlog)
        if peer.task is None or peer.task.done():
            peer.task = self._loop.create_task(self._peer_sender(peer))

    async def _peer_sender(self, peer: _Peer) -> None:
        """Own the outbound connection to one peer, forever."""
        attempt = 0
        bytes_out = self._peer_bytes.labels(peer=peer.endpoint,
                                            direction="out")
        up = self._link_up.labels(peer=peer.endpoint)
        frame: Optional[bytes] = None  # in-flight frame, kept across dials
        while not self._closed:
            try:
                reader, writer = await asyncio.open_connection(
                    peer.host, peer.port)
            except OSError:
                self._connect_failures.labels(peer=peer.endpoint).inc()
                attempt += 1
                # full jitter, capped: uniform(0, min(cap, base * 2^k))
                span = min(self.reconnect_cap,
                           self.reconnect_base * (2 ** min(attempt, 16)))
                await asyncio.sleep(self._rng.uniform(0.0, span))
                continue
            if peer.ever_connected:
                self._reconnects.labels(peer=peer.endpoint).inc()
            peer.ever_connected = True
            attempt = 0
            peer.connected.set()
            up.set(1)
            # Watch the (otherwise unused) read side: the peer never sends
            # on this connection, so any read completion means FIN/RST.
            # Without it, a write after the peer died lands in the kernel
            # buffer of a half-closed socket and vanishes without an error
            # until the returning RST fails the write *after next*.
            eof = self._loop.create_task(reader.read(1))
            try:
                while True:
                    if frame is None:
                        getter = self._loop.create_task(peer.queue.get())
                        await asyncio.wait({getter, eof},
                                           return_when=asyncio.FIRST_COMPLETED)
                        getter.cancel()
                        try:
                            # a completed getter keeps its frame even if
                            # the connection just died (retried next dial)
                            frame = await getter
                        except asyncio.CancelledError:
                            pass
                    if eof.done():
                        raise ConnectionResetError("peer closed connection")
                    writer.write(frame)
                    await writer.drain()
                    bytes_out.inc(len(frame))
                    frame = None
            except (ConnectionError, OSError, asyncio.CancelledError) as exc:
                peer.connected.clear()
                up.set(0)
                eof.cancel()
                writer.close()
                if isinstance(exc, asyncio.CancelledError):
                    raise
                # a frame the failing socket may or may not have carried is
                # retried on the next connection (the USS protocol is
                # idempotent — absolute values, seq-numbered — so a
                # duplicate is harmless and a true loss resyncs)
                self._frames_dropped.labels(reason="send_error").inc()
        peer.connected.clear()

    async def _handle_inbound(self, reader: asyncio.StreamReader,
                              writer: asyncio.StreamWriter) -> None:
        """One inbound connection: read frames until EOF, buffer for pump."""
        frames_in = self._frames.labels(direction="in")
        try:
            while True:
                header = await reader.readexactly(4)
                length = frame_length(header)
                payload = await reader.readexactly(length)
                try:
                    src, dst, message = decode_frame(payload)
                except WireError:
                    self._frames_dropped.labels(reason="decode_error").inc()
                    continue
                frames_in.inc()
                self._peer_bytes.labels(peer=src or "?",
                                        direction="in").inc(4 + length)
                self._inbound.append((dst, message))
        except (asyncio.IncompleteReadError, ConnectionError, OSError,
                WireError):
            pass  # peer went away or spoke garbage framing: drop the conn
        except asyncio.CancelledError:
            return  # transport shutdown: end the handler quietly
        finally:
            writer.close()

    # -- delivery (engine thread) -------------------------------------------

    def pump(self, limit: int = 0) -> int:
        """Dispatch buffered inbound messages to their endpoint handlers."""
        dispatched = 0
        while not limit or dispatched < limit:
            try:
                dst, message = self._inbound.popleft()
            except IndexError:
                break
            handler = self._handlers.get(dst)
            if handler is None:
                self.stats.dropped += 1
                self._frames_dropped.labels(reason="unknown_dst").inc()
                continue
            self.stats.delivered += 1
            handler(message)
            dispatched += 1
        return dispatched

    def pending(self) -> int:
        """Inbound messages waiting for a pump (engine-thread visible)."""
        return len(self._inbound)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else (
            "up" if self._started.is_set() else "new")
        return (f"<TcpUssTransport {self.site} {self.host}:{self._port} "
                f"{state} peers={len(self._peers)}>")
