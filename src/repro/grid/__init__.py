"""repro.grid — real multi-daemon grid: TCP usage exchange + testbed-in-a-box.

The paper's core claim is that decentralized fairshare converges across
*independent* installations exchanging usage summaries.  This package
promotes the USS↔USS exchange from the in-process simulation bus to an
actual network transport and provides the harness that proves it:

``wire``
    Length-prefixed JSON framing for the USS exchange payloads
    (:class:`~repro.services.messages.UsageDeltaMessage` and friends).
``transport``
    :class:`~repro.grid.transport.TcpUssTransport` — the asyncio TCP peer
    transport implementing :class:`~repro.services.transport.UssTransport`:
    one listener per daemon, one auto-reconnecting outbound connection per
    peer, full traffic accounting.
``proxy``
    :class:`~repro.grid.proxy.LinkProxy` — a userspace TCP proxy injected
    per link by the harness to add latency/jitter, drop connections, and
    partition sites, CraneSched-testbed style but pure subprocess +
    loopback so it runs in CI.
``node``
    Build and run one grid daemon (``aequus-repro grid-node``): a full
    site stack whose USS speaks TCP to its peers, fronted by the serve
    plane for queries/probes/metrics.
``harness``
    :class:`~repro.grid.harness.GridHarness` — boot N ``aequusd``
    subprocesses on loopback ports from a shared policy spec, wire every
    link through a fault proxy, kill/restart daemons, and measure
    staleness/convergence across the fleet.
"""

from .harness import GridHarness, GridSpec  # noqa: F401
from .proxy import LinkProxy  # noqa: F401
from .transport import TcpUssTransport  # noqa: F401

__all__ = ["GridHarness", "GridSpec", "LinkProxy", "TcpUssTransport"]
