"""Typed message payloads exchanged between Aequus services.

The real system uses Java web services; what matters for behaviour is the
*content* and *timing* of the exchanges, which these dataclasses capture.
Payloads are plain data (no live object references cross the simulated
network), mirroring the serialization boundary of the original SOAP calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["UsageExchangeMessage", "PolicyExportMessage"]


@dataclass(frozen=True)
class UsageExchangeMessage:
    """Compact usage relayed between USS instances.

    Per paper Section II-A: the combined usage of each user on each site,
    omitting the details of individual jobs — i.e. per-user histogram bins,
    not job records.
    """

    site: str
    sent_at: float
    interval: float
    snapshot: Dict[str, Dict[int, float]]

    def total_charge(self) -> float:
        return sum(sum(bins.values()) for bins in self.snapshot.values())


@dataclass(frozen=True)
class PolicyExportMessage:
    """A serialized policy (sub)tree published by a PDS.

    ``lines`` is the textual ``path = weight`` format, the canonical wire
    representation (parse with :func:`repro.core.policy.parse_policy`).
    """

    source: str
    sent_at: float
    lines: List[str] = field(default_factory=list)

    def text(self) -> str:
        return "\n".join(self.lines) + ("\n" if self.lines else "")
