"""Typed message payloads exchanged between Aequus services.

The real system uses Java web services; what matters for behaviour is the
*content* and *timing* of the exchanges, which these dataclasses capture.
Payloads are plain data (no live object references cross the simulated
network), mirroring the serialization boundary of the original SOAP calls.

Every message type reports its own wire footprint via ``wire_entries()``
(how many (user, bin) data points it carries) and ``wire_bytes()`` (size
under the cost model below), which the network layer accumulates into
:class:`repro.services.network.NetworkStats` — the paper's "compact form"
claim is thereby a measured quantity rather than an assertion.

Wire cost model (documented in DESIGN.md §7): 8-byte message envelope,
8 bytes per float (timestamps, charges), 4 bytes per integer (bin indexes,
user indexes, sequence numbers), 1 byte per flag, UTF-8 strings with a
2-byte length prefix, and — the distinction the compact format exists to
exploit — 8 bytes of structural framing per *map entry*.  Generic map
serializations (SOAP/XML tags in the original Java services, JSON keys,
protobuf map submessages) pay per-entry structure that packed parallel
primitive arrays do not; pricing it makes the dict-of-dict snapshot and
the array delta comparable by shape, not just by element count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["UsageExchangeMessage", "UsageDeltaMessage", "UsageResyncRequest",
           "PolicyExportMessage"]

_ENVELOPE = 8
_FLOAT = 8
_INT = 4
_FLAG = 1
_MAP_ENTRY = 8


def _str_bytes(s: str) -> int:
    return 2 + len(s.encode("utf-8"))


def _tctx_bytes(tctx: Optional[Dict[str, Any]]) -> int:
    """Wire cost of the optional trace context (a small flat map).

    Priced like any other map payload: per-entry structure plus the key
    string and a value (strings by length, numbers as floats).  ``None``
    — tracing disabled — costs nothing, keeping the observability-off
    wire footprint identical to pre-trace senders.
    """
    if not tctx:
        return 0
    return sum(_MAP_ENTRY + _str_bytes(k)
               + (_str_bytes(v) if isinstance(v, str) else _FLOAT)
               for k, v in tctx.items())


@dataclass(frozen=True)
class UsageExchangeMessage:
    """Full per-user histogram state relayed between USS instances.

    Per paper Section II-A: the combined usage of each user on each site,
    omitting the details of individual jobs — i.e. per-user histogram bins,
    not job records.  This dict-of-dict full snapshot is the original
    (pre-delta) exchange format; it remains the reference the delta
    protocol is benchmarked and property-tested against.
    """

    site: str
    sent_at: float
    interval: float
    snapshot: Dict[str, Dict[int, float]]
    #: origin usage watermark: all of the sender's local usage up to this
    #: virtual time is reflected in the payload.  ``None`` (legacy senders,
    #: hand-built test messages) means "assume sent_at".
    horizon: Optional[float] = None
    #: sender incarnation id (see :class:`UsageDeltaMessage`)
    boot: Optional[str] = None
    #: compact trace context (see :class:`UsageDeltaMessage`)
    tctx: Optional[Dict[str, Any]] = None

    @property
    def usage_horizon(self) -> float:
        return self.sent_at if self.horizon is None else self.horizon

    def total_charge(self) -> float:
        return sum(sum(bins.values()) for bins in self.snapshot.values())

    def wire_entries(self) -> int:
        return sum(len(bins) for bins in self.snapshot.values())

    def wire_bytes(self) -> int:
        return (_ENVELOPE + _str_bytes(self.site) + 3 * _FLOAT
                + (_str_bytes(self.boot) if self.boot else 0)
                + _tctx_bytes(self.tctx)
                + sum(_str_bytes(u) + _MAP_ENTRY
                      + len(bins) * (_INT + _FLOAT + _MAP_ENTRY)
                      for u, bins in self.snapshot.items()))


@dataclass(frozen=True)
class UsageDeltaMessage:
    """Changed (user, bin) entries since the sender's previous publish.

    The compact array wire format: ``user_table`` spells each referenced
    user once; entry ``j`` sets the *absolute* value ``charges[j]`` for
    ``(user_table[user_idx[j]], bin_idx[j])`` (0 deletes the bin).
    Absolute values make application idempotent, so a resync snapshot
    racing an in-flight delta cannot double-count.

    ``seq`` numbers the sender's publishes consecutively; a receiver that
    observes a gap missed a delta (partition, drop, late join) and must
    request a full resync.  ``full=True`` marks a complete-state snapshot
    (first publish, or a resync reply): the receiver drops entries not
    listed and may apply it regardless of gaps.

    ``horizon`` is the origin usage watermark (see DESIGN.md §10): every
    local usage event at the sender up to that virtual time is reflected
    in the receiver's copy once this message is applied.  Heartbeats carry
    it too — an idle sender still advances its peers' freshness horizons,
    which is what makes a *stalled* horizon a reliable partition signal.
    """

    site: str
    sent_at: float
    interval: float
    seq: int
    full: bool
    user_table: List[str] = field(default_factory=list)
    user_idx: List[int] = field(default_factory=list)
    bin_idx: List[int] = field(default_factory=list)
    charges: List[float] = field(default_factory=list)
    horizon: Optional[float] = None
    #: sender *incarnation* id, fixed for one USS lifetime.  A receiver
    #: that sees the id change knows the peer restarted and its sequence
    #: space reset — without it, a restarted sender's publishes (seq back
    #: at 1, sent_at back near 0 on a fresh engine) are indistinguishable
    #: from stale reordered traffic and would be silently dropped forever.
    #: ``None`` (legacy senders, hand-built test messages) disables the
    #: check, preserving the original semantics.
    boot: Optional[str] = None
    #: compact trace context stamped at publish (DESIGN.md §14): origin
    #: site, a fleet-unique trace id (``site-boot-seq``), the publish
    #: seq, and the origin's monotonic + virtual-epoch timestamps, so a
    #: collector can reconstruct the delta's causal path across daemons
    #: and align the clocks.  ``None`` (legacy senders, hand-built test
    #: messages, tracing disabled) carries — and costs — nothing.
    tctx: Optional[Dict[str, Any]] = None

    @property
    def usage_horizon(self) -> float:
        return self.sent_at if self.horizon is None else self.horizon

    def total_charge(self) -> float:
        return sum(self.charges)

    def wire_entries(self) -> int:
        return len(self.charges)

    def wire_bytes(self) -> int:
        return (_ENVELOPE + _str_bytes(self.site) + 3 * _FLOAT + _INT + _FLAG
                + (_str_bytes(self.boot) if self.boot else 0)
                + _tctx_bytes(self.tctx)
                + sum(_str_bytes(u) for u in self.user_table)
                + len(self.charges) * (2 * _INT + _FLOAT))


@dataclass(frozen=True)
class UsageResyncRequest:
    """Ask a peer for a full snapshot after a sequence gap was detected."""

    site: str
    sent_at: float
    target: str

    def wire_entries(self) -> int:
        return 0

    def wire_bytes(self) -> int:
        return _ENVELOPE + _str_bytes(self.site) + _FLOAT + _str_bytes(self.target)


@dataclass(frozen=True)
class PolicyExportMessage:
    """A serialized policy (sub)tree published by a PDS.

    ``lines`` is the textual ``path = weight`` format, the canonical wire
    representation (parse with :func:`repro.core.policy.parse_policy`).
    """

    source: str
    sent_at: float
    lines: List[str] = field(default_factory=list)

    def text(self) -> str:
        return "\n".join(self.lines) + ("\n" if self.lines else "")

    def wire_entries(self) -> int:
        return len(self.lines)

    def wire_bytes(self) -> int:
        return (_ENVELOPE + _str_bytes(self.source) + _FLOAT
                + sum(_str_bytes(line) for line in self.lines))
