"""Usage Monitoring Service (UMS).

Gathers usage histograms from one or more USSs and pre-computes decayed
per-user usage totals (and usage trees shaped by the site policy) on a
refresh interval (paper Section II-A).  The refresh interval is delay
source II in the update-delay analysis.

A site in LOCAL_ONLY participation mode points its UMS at local usage only
(``consider_remote=False``): it still publishes data to the grid but
prioritizes on local history — the second scenario of the
partial-participation test.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.decay import DecayFunction, ExponentialDecay
from ..core.tree import Tree
from ..core.usage import UsageTree, build_usage_tree
from ..sim.engine import PeriodicTask, SimulationEngine
from .uss import UsageStatisticsService

__all__ = ["UsageMonitoringService"]


class UsageMonitoringService:
    """Periodic pre-computation of decayed usage totals."""

    def __init__(self, site: str, engine: SimulationEngine,
                 sources: List[UsageStatisticsService],
                 decay: Optional[DecayFunction] = None,
                 refresh_interval: float = 30.0,
                 consider_remote: bool = True,
                 start_offset: float = 0.0):
        if not sources:
            raise ValueError("a UMS needs at least one USS source")
        self.site = site
        self.engine = engine
        self.sources = list(sources)
        self.decay = decay or ExponentialDecay(half_life=7 * 24 * 3600.0)
        self.consider_remote = consider_remote
        self.refresh_interval = refresh_interval
        self.refreshes = 0
        self._totals: Dict[str, float] = {}
        self._computed_at: float = engine.now
        self._task: Optional[PeriodicTask] = engine.periodic(
            refresh_interval, self.refresh, start_offset=start_offset)
        self.refresh()

    def refresh(self) -> None:
        """Pull histograms and recompute decayed per-user totals."""
        now = self.engine.now
        totals: Dict[str, float] = {}
        for uss in self.sources:
            merged = uss.global_usage(include_remote=self.consider_remote)
            for user, value in merged.decayed_totals(now, self.decay).items():
                totals[user] = totals.get(user, 0.0) + value
        self._totals = totals
        self._computed_at = now
        self.refreshes += 1

    # -- queries (served from the pre-computed state) ------------------------

    @property
    def computed_at(self) -> float:
        return self._computed_at

    def usage_totals(self) -> Dict[str, float]:
        """Decayed per-user usage as of the last refresh."""
        return dict(self._totals)

    def usage_tree(self, structure: Tree) -> UsageTree:
        """Usage tree mirroring ``structure`` from the pre-computed totals."""
        return build_usage_tree(structure, self._totals)

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None
