"""Usage Monitoring Service (UMS).

Gathers usage histograms from one or more USSs and pre-computes decayed
per-user usage totals (and usage trees shaped by the site policy) on a
refresh interval (paper Section II-A).  The refresh interval is delay
source II in the update-delay analysis.

Refresh is **incremental** (DESIGN.md §7): instead of merging every
histogram and re-decaying every user each period, the UMS keeps cached
per-user decayed totals and pulls only the *dirty-user set* (users whose
bins changed since the last pull) from each USS through a registered
change cursor.  Clean users are age-shifted analytically — exponential
decay is multiplicative in age, so advancing a total by ``Δt`` is one
multiply by ``0.5**(Δt/half_life)`` (``decay.weight(Δt)``); with
:class:`~repro.core.decay.NoDecay` the factor is 1.  Users whose newest
bin midpoint still lies in the future of the previous refresh (the ages
were clamped at zero) stay in a "young" set and are recomputed until the
midpoint has passed, keeping the shift exact.  Decay families whose
weights are not multiplicative in age (linear, window, step) fall back to
the full per-user recompute every refresh, as does the priming refresh.

The analytic shift is applied as one *global scale scalar* (DESIGN.md
§12), not a per-user multiply: cached totals are stored as
scale-invariant bases with ``served = base * scale``, and an idle refresh
advances every user at once by ``scale *= factor`` — O(1) instead of
O(users).  Dirty users are recomputed in a single vectorized 2-D pass
per histogram (:meth:`~repro.core.usage.UsageHistogram.
decayed_totals_batch`).  Downstream consumers that want to avoid their
own O(users) pass read the base totals directly (:meth:`usage_totals_
base` + :meth:`usage_scale`) and subscribe to a **totals cursor**
(:meth:`register_totals_cursor`) that reports exactly which users' base
totals changed each refresh — pure decay aging changes no base, so an
idle site's cursor drains empty and the FCS can skip its refresh
entirely.

A site in LOCAL_ONLY participation mode points its UMS at local usage only
(``consider_remote=False``): it still publishes data to the grid but
prioritizes on local history — the second scenario of the
partial-participation test.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from types import MappingProxyType
from typing import Deque, Dict, List, Mapping, Optional, Set

from ..core.decay import DecayFunction, ExponentialDecay, NoDecay
from ..core.tree import Tree
from ..core.usage import UsageTree, build_usage_tree
from ..obs import trace
from ..obs.registry import MetricsRegistry, metric_property
from ..sim.engine import PeriodicTask, SimulationEngine
from .uss import UsageStatisticsService

__all__ = ["UsageMonitoringService"]


class UsageMonitoringService:
    """Periodic pre-computation of decayed usage totals."""

    #: fold the global scale back into the bases before it underflows the
    #: precision budget of ``base * scale`` round-trips
    SCALE_FLOOR = 2.0 ** -40

    def __init__(self, site: str, engine: SimulationEngine,
                 sources: List[UsageStatisticsService],
                 decay: Optional[DecayFunction] = None,
                 refresh_interval: float = 30.0,
                 consider_remote: bool = True,
                 incremental: bool = True,
                 start_offset: float = 0.0,
                 registry: Optional[MetricsRegistry] = None):
        if not sources:
            raise ValueError("a UMS needs at least one USS source")
        self.site = site
        self.engine = engine
        self.sources = list(sources)
        self.decay = decay or ExponentialDecay(half_life=7 * 24 * 3600.0)
        self.consider_remote = consider_remote
        self.refresh_interval = refresh_interval
        self.registry = registry if registry is not None else MetricsRegistry(
            constant_labels={"site": site}, clock=lambda: engine.now)
        refreshes = self.registry.counter(
            "aequus_ums_refreshes_total",
            "UMS refresh rounds by path (full merge vs incremental)",
            ("path",))
        users = self.registry.counter(
            "aequus_ums_users_total",
            "Users touched by incremental refreshes, by how",
            ("how",))
        self._metrics = {
            "refreshes": refreshes.labels(path="all"),
            "full_refreshes": refreshes.labels(path="full"),
            "users_recomputed": users.labels(how="recomputed"),
            "users_shifted": users.labels(how="shifted"),
        }
        self._refresh_hist = self.registry.histogram(
            "aequus_ums_refresh_seconds",
            "Wall time of one UMS refresh").labels()
        # the analytic age shift is exact only for decays multiplicative in
        # age; other families recompute every user each refresh
        self.incremental = incremental and isinstance(
            self.decay, (ExponentialDecay, NoDecay))
        self._cursors: List[Optional[int]] = [None] * len(self.sources)
        if self.incremental:
            self._cursors = [
                uss.register_usage_cursor(include_remote=consider_remote)
                for uss in self.sources]
        #: scale-invariant base totals; served total = base * ``_scale``
        self._totals: Dict[str, float] = {}
        #: global decay scale applied to every base (DESIGN.md §12): an
        #: idle refresh advances all users with ``_scale *= factor``
        self._scale: float = 1.0
        #: downstream totals cursors: id -> (full-resync flag, dirty users)
        self._totals_cursors: Dict[int, List] = {}
        self._totals_cursor_ids = itertools.count(1)
        #: newest bin midpoint per cached user (staleness of the age shift)
        self._max_mid: Dict[str, float] = {}
        #: users recomputed while their newest midpoint was still ahead
        self._young: Set[str] = set()
        self._primed = False
        self._computed_at: float = engine.now
        #: per-origin usage horizons as of the last refresh: the totals
        #: served by :meth:`usage_totals` incorporate exactly this much of
        #: each origin's usage (captured from the sources *at* refresh, so
        #: the FCS inherits a causally consistent horizon set)
        self._horizons: Dict[str, float] = {}
        #: wire trace ids folded in by refreshes since the last FCS drain
        #: (DESIGN.md §14); bounded so an undrained chain cannot leak
        self._applied_traces: Deque[str] = deque(maxlen=256)
        self._task: Optional[PeriodicTask] = engine.periodic(
            refresh_interval, self.refresh, start_offset=start_offset)
        self.refresh()

    refreshes = metric_property("refreshes")
    #: refreshes that went through the full merge-and-decay path
    full_refreshes = metric_property("full_refreshes")
    #: dirty/young users recomputed on incremental refreshes
    users_recomputed = metric_property("users_recomputed")
    #: clean users advanced by the analytic age shift (one multiply each)
    users_shifted = metric_property("users_shifted")

    def refresh(self) -> None:
        """Advance the cached decayed per-user totals to ``engine.now``."""
        timed = self.registry.enabled
        t0 = time.perf_counter() if timed else 0.0
        with trace.span("ums.refresh", site=self.site) as sp:
            now = self.engine.now
            # hand the wire deltas' causal identity down the chain: trace
            # ids the USSs applied since our last refresh ride in this
            # span's args and queue up for the FCS to claim
            traces: List[str] = []
            for uss in self.sources:
                drain = getattr(uss, "drain_applied_traces", None)
                if drain is not None:
                    traces.extend(drain())
            if traces:
                self._applied_traces.extend(traces)
                if sp is not None:
                    sp["traces"] = traces
            dirty: Set[str] = set()
            if self.incremental:
                for uss, cursor in zip(self.sources, self._cursors):
                    if cursor is not None:
                        dirty |= uss.drain_dirty_users(cursor)
            if not self.incremental or not self._primed:
                self._full_refresh(now)
            else:
                self._incremental_refresh(now, dirty)
            self._computed_at = now
            self._capture_horizons()
            self._metrics["refreshes"].inc()
        if timed:
            self._refresh_hist.observe(time.perf_counter() - t0)

    def _full_refresh(self, now: float) -> None:
        """Merge every histogram and re-decay every user (reference path)."""
        totals: Dict[str, float] = {}
        for uss in self.sources:
            merged = uss.global_usage(include_remote=self.consider_remote)
            for user, value in merged.decayed_totals(now, self.decay).items():
                totals[user] = totals.get(user, 0.0) + value
        self._totals = totals
        self._scale = 1.0
        for state in self._totals_cursors.values():
            state[0] = True
            state[1].clear()
        self._metrics["full_refreshes"].inc()
        if self.incremental:
            # seed the age-shift bookkeeping for subsequent delta refreshes
            mids: Dict[str, float] = {}
            for uss in self.sources:
                for user, m in uss.newest_user_midpoints(
                        self.consider_remote).items():
                    if m > mids.get(user, float("-inf")):
                        mids[user] = m
            self._max_mid = mids
            self._young = {u for u, m in mids.items() if m > now}
            self._primed = True

    def _incremental_refresh(self, now: float, dirty: Set[str]) -> None:
        # the analytic age shift: one scalar multiply advances every clean
        # user's served total (base * scale) at once — the bases don't move
        self._scale *= self.decay.weight(now - self._computed_at)
        if self._scale < self.SCALE_FLOOR:
            self._renormalize_scale()
        recompute = dirty | self._young
        self._metrics["users_shifted"].inc(
            len(self._totals) - len(recompute & self._totals.keys()))
        if not recompute:
            return
        self._young = set()
        self._metrics["users_recomputed"].inc(len(recompute))
        users = list(recompute)
        totals: Dict[str, float] = {}
        mids: Dict[str, float] = {}
        for uss in self.sources:
            for user, t in uss.decayed_user_totals(
                    users, now, self.decay, self.consider_remote).items():
                totals[user] = totals.get(user, 0.0) + t
            for user, m in uss.newest_user_midpoints_for(
                    users, self.consider_remote).items():
                if m > mids.get(user, float("-inf")):
                    mids[user] = m
        for user in users:
            total = totals.get(user)
            if total is None:
                # pruned/deleted everywhere: drop, as a full merge would
                if self._totals.pop(user, None) is not None:
                    self._mark_totals_dirty(user)
                self._max_mid.pop(user, None)
                continue
            base = total / self._scale
            if self._totals.get(user) != base:
                self._totals[user] = base
                self._mark_totals_dirty(user)
            max_mid = mids.get(user, float("-inf"))
            self._max_mid[user] = max_mid
            if max_mid > now:
                # the newest bin's age is still clamped at zero; keep
                # recomputing until the midpoint passes, then shift freely
                self._young.add(user)

    def _renormalize_scale(self) -> None:
        """Fold the scale back into the bases (rare: ~every 2**40 of decay).

        Every base changes, so downstream totals cursors are flagged for a
        full resync.
        """
        scale = self._scale
        for user in self._totals:
            self._totals[user] *= scale
        self._scale = 1.0
        for state in self._totals_cursors.values():
            state[0] = True
            state[1].clear()

    def _mark_totals_dirty(self, user: str) -> None:
        for state in self._totals_cursors.values():
            if not state[0]:
                state[1].add(user)

    def _capture_horizons(self) -> None:
        """Freeze the sources' usage horizons alongside the totals.

        Multiple sources tracking the same origin merge on the *minimum*:
        the aggregate provably incorporates an origin's usage only up to
        the least-advanced copy.
        """
        horizons: Dict[str, float] = {}
        for uss in self.sources:
            for origin, h in uss.usage_horizons(self.consider_remote).items():
                current = horizons.get(origin)
                if current is None or h < current:
                    horizons[origin] = h
        self._horizons = horizons

    # -- queries (served from the pre-computed state) ------------------------

    @property
    def computed_at(self) -> float:
        return self._computed_at

    def usage_totals(self) -> Dict[str, float]:
        """Decayed per-user usage as of the last refresh."""
        scale = self._scale
        if scale == 1.0:
            return dict(self._totals)
        return {user: base * scale for user, base in self._totals.items()}

    def usage_totals_base(self) -> Mapping[str, float]:
        """Scale-invariant base totals (``served = base * usage_scale()``).

        A read-only view of the live cache — no O(users) copy.  Bases only
        move when a user's histogram bins change, so consumers holding a
        totals cursor can fold just the drained users and multiply their
        aggregate by the scale.
        """
        return MappingProxyType(self._totals)

    def usage_scale(self) -> float:
        """Global decay scale applied to every base total."""
        return self._scale

    def register_totals_cursor(self) -> int:
        """Subscribe to base-total changes; returns a cursor id.

        A fresh cursor starts with the full-resync flag set so the first
        drain tells the consumer to fold everything once.
        """
        cursor = next(self._totals_cursor_ids)
        self._totals_cursors[cursor] = [True, set()]
        return cursor

    def drain_totals_changes(self, cursor: int):
        """Changes to the base totals since the last drain.

        Returns ``(full, changed)``: when ``full`` is True the consumer
        must resync against :meth:`usage_totals_base` from scratch (priming,
        a full refresh, or a scale renormalization) and ``changed`` is
        empty.  Otherwise ``changed`` maps each dirty user to their new
        base total, with ``None`` for users dropped from the cache.
        """
        state = self._totals_cursors[cursor]
        full, dirty = state[0], state[1]
        if full:
            self._totals_cursors[cursor] = [False, set()]
            return True, {}
        state[1] = set()
        return False, {user: self._totals.get(user) for user in dirty}

    def release_totals_cursor(self, cursor: int) -> None:
        self._totals_cursors.pop(cursor, None)

    def usage_horizons(self) -> Dict[str, float]:
        """Per-origin usage horizons incorporated by the last refresh."""
        return dict(self._horizons)

    def drain_applied_traces(self) -> List[str]:
        """Wire trace ids folded into the totals since the last drain.

        Exactly-once, like the USS method of the same name: the FCS pulls
        these at refresh time so the ids reach the snapshot-publish span.
        """
        out: List[str] = []
        while True:
            try:
                out.append(self._applied_traces.popleft())
            except IndexError:
                return out

    def usage_tree(self, structure: Tree) -> UsageTree:
        """Usage tree mirroring ``structure`` from the pre-computed totals."""
        return build_usage_tree(structure, self.usage_totals())

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None
        if self.incremental:
            for uss, cursor in zip(self.sources, self._cursors):
                if cursor is not None:
                    uss.release_usage_cursor(cursor)
            self._cursors = [None] * len(self.sources)