"""TTL caching, as used by the Aequus services and by ``libaequus``.

Caching is load-bearing in the paper: pre-computed fairshare trees mean "no
real-time calculations need to take place when new jobs arrive", and
``libaequus`` caches resolved fairshare values and identities "for a
configurable amount of time, which considerably reduces the amount of
network traffic and computations required when batches of jobs are submitted
and processed at the same time".  The cache times are also delay sources
II and III in the update-delay analysis (Section IV-A.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Callable, Dict, Generic, Hashable, Iterator, List,
                    Mapping, Optional, Sequence, Tuple, TypeVar)

from ..obs.registry import MetricsRegistry

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

__all__ = ["TTLCache", "CacheStats", "RegistryCacheStats", "usage_digest",
           "LeafValueMap"]


class LeafValueMap(Mapping):
    """Immutable ``leaf path -> value`` mapping over a values array.

    The FCS used to materialize a ``dict(zip(leaf_paths, values))`` on
    every refresh — an O(leaves) Python pass that dominates the refresh
    once the kernel itself is incremental.  This view serves the same
    mapping straight from the projection array and the compiled leaf
    tables: construction is O(1), lookups are one dict probe plus one
    array read, and iteration order is exactly ``leaf_paths`` order (which
    consumers like the fairness recorder's ``np.fromiter`` rely on).

    Instances are snapshots by construction: refreshes build a *new* map
    over the new arrays, never mutate an existing one, so serve-plane
    snapshots holding a map stay internally consistent forever.
    """

    __slots__ = ("_paths", "_slot", "_vec", "_values_list")

    def __init__(self, paths: Sequence[str], slot: Mapping[str, int],
                 vec) -> None:
        self._paths = paths
        self._slot = slot
        self._vec = vec
        self._values_list: Optional[List[float]] = None

    def __getitem__(self, key: str) -> float:
        return float(self._vec[self._slot[key]])

    def get(self, key: str, default: Optional[float] = None) -> Optional[float]:
        row = self._slot.get(key)
        if row is None:
            return default
        return float(self._vec[row])

    def __contains__(self, key: object) -> bool:
        return key in self._slot

    def __iter__(self) -> Iterator[str]:
        return iter(self._paths)

    def __len__(self) -> int:
        return len(self._paths)

    def keys(self):
        return self._paths

    def values(self):
        if self._values_list is None:
            self._values_list = self._vec.tolist() \
                if hasattr(self._vec, "tolist") else list(self._vec)
        return self._values_list

    def items(self):
        return zip(self._paths, self.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LeafValueMap({len(self._paths)} leaves)"


def usage_digest(totals: Mapping[str, float]) -> frozenset:
    """Exact, order-independent digest of per-user usage totals.

    The FCS skips an entire refresh when the policy epoch and this digest
    are unchanged (idle sites would otherwise rebuild identical trees every
    period).  A frozenset compares by exact element equality, so a digest
    hit can never be a hash collision (a wrongly skipped recomputation);
    the comparison is a plain set-equality check, orders of magnitude
    cheaper than the tree computation it gates.
    """
    return frozenset(totals.items())


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class RegistryCacheStats(CacheStats):
    """``CacheStats`` whose counts live in ``aequus_cache_lookups_total``
    series of a :class:`~repro.obs.registry.MetricsRegistry`.

    Same reads and writes as the dataclass (``stats.hits``,
    ``stats.hits += 1``, ``hit_rate``), so callers holding a stats object
    — ``FairshareCalculationService.refresh_stats``, the ``libaequus``
    cache surfaces — cannot tell the difference, but a Prometheus scrape
    sees the hit/miss series labeled by cache name.
    """

    def __init__(self, registry: MetricsRegistry, cache: str):
        family = registry.counter(
            "aequus_cache_lookups_total",
            "Cache lookups by cache name and hit/miss outcome",
            ("cache", "outcome"))
        self._hits = family.labels(cache=cache, outcome="hit")
        self._misses = family.labels(cache=cache, outcome="miss")

    @property
    def hits(self) -> int:
        return self._hits.value

    @hits.setter
    def hits(self, value) -> None:
        self._hits.set(value)

    @property
    def misses(self) -> int:
        return self._misses.value

    @misses.setter
    def misses(self, value) -> None:
        self._misses.set(value)


class TTLCache(Generic[K, V]):
    """Time-based cache keyed on a virtual clock.

    ``clock`` is any zero-argument callable returning the current time
    (normally ``lambda: engine.now``).  ``ttl == 0`` disables caching
    entirely (every lookup is a miss), which the update-delay experiment
    uses to isolate delay sources.
    """

    def __init__(self, clock: Callable[[], float], ttl: float,
                 stats: Optional[CacheStats] = None):
        if ttl < 0:
            raise ValueError("ttl must be non-negative")
        self.clock = clock
        self.ttl = float(ttl)
        self._entries: Dict[K, Tuple[float, V]] = {}
        self.stats = stats if stats is not None else CacheStats()

    def get(self, key: K, loader: Callable[[], V]) -> V:
        """Return the cached value for ``key``, refreshing via ``loader``."""
        now = self.clock()
        entry = self._entries.get(key)
        if entry is not None and self.ttl > 0 and now - entry[0] < self.ttl:
            self.stats.hits += 1
            return entry[1]
        self.stats.misses += 1
        value = loader()
        if self.ttl > 0:
            self._entries[key] = (now, value)
        return value

    def peek(self, key: K):
        """Current cached value (even if stale) or None; no stats effect."""
        entry = self._entries.get(key)
        return entry[1] if entry is not None else None

    def invalidate(self, key: K) -> None:
        self._entries.pop(key, None)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
