"""TTL caching, as used by the Aequus services and by ``libaequus``.

Caching is load-bearing in the paper: pre-computed fairshare trees mean "no
real-time calculations need to take place when new jobs arrive", and
``libaequus`` caches resolved fairshare values and identities "for a
configurable amount of time, which considerably reduces the amount of
network traffic and computations required when batches of jobs are submitted
and processed at the same time".  The cache times are also delay sources
II and III in the update-delay analysis (Section IV-A.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generic, Hashable, Mapping, Tuple, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

__all__ = ["TTLCache", "CacheStats", "usage_digest"]


def usage_digest(totals: Mapping[str, float]) -> frozenset:
    """Exact, order-independent digest of per-user usage totals.

    The FCS skips an entire refresh when the policy epoch and this digest
    are unchanged (idle sites would otherwise rebuild identical trees every
    period).  A frozenset compares by exact element equality, so a digest
    hit can never be a hash collision (a wrongly skipped recomputation);
    the comparison is a plain set-equality check, orders of magnitude
    cheaper than the tree computation it gates.
    """
    return frozenset(totals.items())


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class TTLCache(Generic[K, V]):
    """Time-based cache keyed on a virtual clock.

    ``clock`` is any zero-argument callable returning the current time
    (normally ``lambda: engine.now``).  ``ttl == 0`` disables caching
    entirely (every lookup is a miss), which the update-delay experiment
    uses to isolate delay sources.
    """

    def __init__(self, clock: Callable[[], float], ttl: float):
        if ttl < 0:
            raise ValueError("ttl must be non-negative")
        self.clock = clock
        self.ttl = float(ttl)
        self._entries: Dict[K, Tuple[float, V]] = {}
        self.stats = CacheStats()

    def get(self, key: K, loader: Callable[[], V]) -> V:
        """Return the cached value for ``key``, refreshing via ``loader``."""
        now = self.clock()
        entry = self._entries.get(key)
        if entry is not None and self.ttl > 0 and now - entry[0] < self.ttl:
            self.stats.hits += 1
            return entry[1]
        self.stats.misses += 1
        value = loader()
        if self.ttl > 0:
            self._entries[key] = (now, value)
        return value

    def peek(self, key: K):
        """Current cached value (even if stale) or None; no stats effect."""
        entry = self._entries.get(key)
        return entry[1] if entry is not None else None

    def invalidate(self, key: K) -> None:
        self._entries.pop(key, None)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
