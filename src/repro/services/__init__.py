"""Decentralized Aequus service stack: USS, UMS, PDS, FCS, IRS, and the
simulated network connecting installations (paper Figure 2)."""

from .cache import CacheStats, TTLCache
from .fcs import FairshareCalculationService
from .irs import IdentityResolutionError, IdentityResolutionService, table_endpoint
from .messages import (PolicyExportMessage, UsageDeltaMessage,
                       UsageExchangeMessage, UsageResyncRequest)
from .network import Network, NetworkStats
from .pds import PolicyDistributionService
from .site import AequusSite, ParticipationMode, SiteConfig, connect_sites
from .ums import UsageMonitoringService
from .uss import UsageStatisticsService

__all__ = [
    "CacheStats", "TTLCache",
    "FairshareCalculationService",
    "IdentityResolutionError", "IdentityResolutionService", "table_endpoint",
    "PolicyExportMessage", "UsageDeltaMessage", "UsageExchangeMessage",
    "UsageResyncRequest",
    "Network", "NetworkStats",
    "PolicyDistributionService",
    "AequusSite", "ParticipationMode", "SiteConfig", "connect_sites",
    "UsageMonitoringService",
    "UsageStatisticsService",
]
