"""Usage Statistics Service (USS).

Gathers per-job usage results of the local site and produces per-user
histograms for configurable time intervals (paper Section II-A).  The USS
is also the *only* inter-site channel: Aequus instances "communicate only
by exchanging data through the USS services", relaying per-user histogram
snapshots rather than individual job records.

Participation is asymmetric by design: a site may publish without
consuming or vice versa — the partial-participation experiment
(Section IV-A.4) exercises exactly those modes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.usage import UsageHistogram, UsageRecord
from ..sim.engine import PeriodicTask, SimulationEngine
from .messages import UsageExchangeMessage
from .network import Network

__all__ = ["UsageStatisticsService"]


class UsageStatisticsService:
    """Per-site usage aggregation and inter-site exchange."""

    def __init__(self, site: str, engine: SimulationEngine, network: Network,
                 histogram_interval: float = 60.0,
                 exchange_interval: float = 30.0,
                 publish: bool = True,
                 prune_horizon: Optional[float] = None,
                 start_offset: float = 0.0):
        self.site = site
        self.engine = engine
        self.network = network
        self.publish = publish
        self.exchange_interval = exchange_interval
        #: optional history horizon: bins entirely older than this are
        #: dropped at each exchange tick (bounds long-run memory)
        self.prune_horizon = prune_horizon
        self.charge_pruned = 0.0
        self.local = UsageHistogram(histogram_interval)
        self.remote: Dict[str, UsageHistogram] = {}
        self.peers: List[str] = []
        self.records_received = 0
        self.exchanges_sent = 0
        self.exchanges_received = 0
        self._endpoint = f"uss:{site}"
        network.connect(self._endpoint, self._on_message)
        self._task: Optional[PeriodicTask] = engine.periodic(
            exchange_interval, self._exchange, start_offset=start_offset)

    # -- local recording -------------------------------------------------

    def record_job(self, record: UsageRecord) -> None:
        """Ingest a completed job's usage (from libaequus call-outs)."""
        self.records_received += 1
        self.local.add_record(record)

    # -- peering -----------------------------------------------------------

    def add_peer(self, site: str) -> None:
        if site == self.site:
            raise ValueError("a USS does not peer with itself")
        if site not in self.peers:
            self.peers.append(site)

    def _exchange(self) -> None:
        if self.prune_horizon is not None:
            self.charge_pruned += self.local.prune(self.engine.now,
                                                   self.prune_horizon)
            for hist in self.remote.values():
                hist.prune(self.engine.now, self.prune_horizon)
        if not self.publish or not self.peers:
            return
        message = UsageExchangeMessage(
            site=self.site,
            sent_at=self.engine.now,
            interval=self.local.interval,
            snapshot=self.local.snapshot(),
        )
        for peer in self.peers:
            self.network.send(self._endpoint, f"uss:{peer}", message)
        self.exchanges_sent += 1

    def _on_message(self, message: UsageExchangeMessage) -> None:
        if message.interval != self.local.interval:
            # Sites must agree on the histogram interval for bins to align;
            # mismatched configurations are dropped (and visible in stats).
            return
        self.exchanges_received += 1
        hist = UsageHistogram(message.interval)
        hist.replace(message.snapshot)
        self.remote[message.site] = hist

    # -- queries ----------------------------------------------------------

    def global_usage(self, include_remote: bool = True) -> UsageHistogram:
        """Merged histogram: local plus (optionally) all known remote sites."""
        merged = UsageHistogram(self.local.interval)
        merged.merge(self.local)
        if include_remote:
            for hist in self.remote.values():
                merged.merge(hist)
        return merged

    def known_sites(self) -> List[str]:
        return sorted([self.site, *self.remote])

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None
