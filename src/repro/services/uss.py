"""Usage Statistics Service (USS).

Gathers per-job usage results of the local site and produces per-user
histograms for configurable time intervals (paper Section II-A).  The USS
is also the *only* inter-site channel: Aequus instances "communicate only
by exchanging data through the USS services", relaying per-user histogram
snapshots rather than individual job records.

Exchange protocol (DESIGN.md §7).  By default the USS is **incremental**:
each publish carries only the (user, bin) entries that changed since the
previous publish, as absolute bin values in the compact array format of
:class:`~repro.services.messages.UsageDeltaMessage`.  Publishes are
numbered consecutively (``seq``); the first publish — and every resync
reply — is a ``full=True`` complete-state snapshot.  A receiver applies a
delta only when it extends its last applied sequence by exactly one;
older messages are dropped as stale (network jitter can reorder them) and
a gap (partition, drop, late join) triggers a
:class:`~repro.services.messages.UsageResyncRequest`, answered with a full
snapshot.  ``delta_exchange=False`` restores the original
full-snapshot-every-tick behaviour, retained as the measured reference.

Participation is asymmetric by design: a site may publish without
consuming or vice versa — the partial-participation experiment
(Section IV-A.4) exercises exactly those modes.

Freshness watermarks (DESIGN.md §10).  Every publish — full, delta,
heartbeat, resync reply — is stamped with the sender's *usage horizon*:
the virtual time up to which its local usage is reflected in the payload.
The receiver keeps a per-origin high-watermark, advanced by every applied
message *and* by heartbeats confirming the current sequence (an idle peer
still proves freshness), but never across a sequence gap — missing data
must not look fresh.  :meth:`UsageStatisticsService.usage_horizons` is the
base of the causal chain UMS → FCS → snapshot that turns the paper's
Fig. 11 update delay into the continuously exported
``aequus_usage_staleness_seconds`` histogram.
"""

from __future__ import annotations

import itertools
import os
import time
import uuid
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Set

from ..core.decay import DecayFunction
from ..core.usage import UsageHistogram, UsageRecord
from ..obs import trace
from ..obs.registry import AGE_BUCKETS, MetricsRegistry, metric_property
from ..sim.engine import PeriodicTask, SimulationEngine
from .messages import UsageDeltaMessage, UsageExchangeMessage, UsageResyncRequest
from .network import Network

__all__ = ["UsageStatisticsService"]


class UsageStatisticsService:
    """Per-site usage aggregation and inter-site exchange."""

    def __init__(self, site: str, engine: SimulationEngine, network: Network,
                 histogram_interval: float = 60.0,
                 exchange_interval: float = 30.0,
                 publish: bool = True,
                 delta_exchange: bool = True,
                 prune_horizon: Optional[float] = None,
                 start_offset: float = 0.0,
                 registry: Optional[MetricsRegistry] = None,
                 boot_id: Optional[str] = None):
        self.site = site
        self.engine = engine
        self.network = network
        self.publish = publish
        self.delta_exchange = delta_exchange
        self.exchange_interval = exchange_interval
        #: optional history horizon: bins entirely older than this are
        #: dropped at each exchange tick (bounds long-run memory)
        self.prune_horizon = prune_horizon
        self.charge_pruned = 0.0
        self.local = UsageHistogram(histogram_interval)
        self.remote: Dict[str, UsageHistogram] = {}
        #: serve-plane ingress: records enqueued from other threads (deque
        #: appends are atomic), folded into the histogram on the service's
        #: own thread at the next exchange tick or explicit drain
        self._ingest: Deque[UsageRecord] = deque()
        self.registry = registry if registry is not None else MetricsRegistry(
            constant_labels={"site": site}, clock=lambda: engine.now)
        records = self.registry.counter(
            "aequus_uss_records_total",
            "Usage records by ingress event", ("event",))
        exchanges = self.registry.counter(
            "aequus_uss_exchanges_total",
            "Exchange messages by outcome", ("event",))
        resyncs = self.registry.counter(
            "aequus_uss_resyncs_total",
            "Full-snapshot resyncs requested from / served to peers",
            ("event",))
        self._metrics = {
            "records_received": records.labels(event="received"),
            "records_enqueued": records.labels(event="enqueued"),
            "records_drained": records.labels(event="drained"),
            "exchanges_sent": exchanges.labels(event="sent"),
            "exchanges_received": exchanges.labels(event="received"),
            "exchanges_stale": exchanges.labels(event="stale"),
            "exchanges_skipped": exchanges.labels(event="skipped"),
            "resyncs_requested": resyncs.labels(event="requested"),
            "resyncs_served": resyncs.labels(event="served"),
            "peer_restarts": self.registry.counter(
                "aequus_uss_peer_restarts_total",
                "Peer incarnation changes observed (their sequence space "
                "reset; repaired via full resync)").labels(),
        }
        self._exchange_hist = self.registry.histogram(
            "aequus_uss_exchange_seconds",
            "Wall time of one USS exchange tick (drain, prune, publish)"
        ).labels()
        self._staleness_family = self.registry.histogram(
            "aequus_usage_staleness_seconds",
            "Per-origin usage-horizon age (virtual seconds) observed at "
            "each exchange tick — the receive-side update-delay "
            "distribution of the paper's Fig. 11", ("origin",),
            buckets=AGE_BUCKETS)
        self._staleness_children: Dict[str, object] = {}
        self.peers: List[str] = []
        #: incarnation id stamped on every publish: a fresh one per USS
        #: instance lets peers tell a *restarted* site (sequence space
        #: reset) from stale reordered traffic.  Only compared for
        #: equality, so the draw does not perturb seeded sim streams.
        self.boot_id = boot_id if boot_id is not None else uuid.uuid4().hex[:12]
        #: sender state: consecutive publish sequence number (0 = never)
        self._seq = 0
        #: publish event counter, distinct from ``_seq`` (heartbeats reuse
        #: the sequence number but are separate publish *events* and get
        #: their own trace id)
        self._pub_count = 0
        #: trace ids of messages applied to remote histograms since the
        #: last :meth:`drain_applied_traces` — the hop that hands a wire
        #: delta's causal identity on to the UMS→FCS→snapshot chain.
        #: Bounded: if nobody drains (no daemon/collector), ids just age
        #: out instead of leaking.
        self._applied_traces: Deque[str] = deque(maxlen=256)
        self._exchange_cursor: Optional[int] = None
        if delta_exchange and publish:
            self._exchange_cursor = self.local.register_cursor()
        #: receiver state per remote site
        self._recv_seq: Dict[str, int] = {}
        self._recv_sent_at: Dict[str, float] = {}
        self._recv_boot: Dict[str, str] = {}
        #: per-origin usage high-watermark (virtual time) — advanced by
        #: applied messages and current-seq heartbeats, never across gaps
        self._recv_horizon: Dict[str, float] = {}
        #: UMS-facing dirty-user cursors: cursor id -> histogram-cursor map
        #: keyed by histogram owner ("" = local, else remote site name)
        self._usage_cursors: Dict[int, Dict[str, int]] = {}
        self._usage_cursor_remote: Dict[int, bool] = {}
        self._usage_cursor_ids = itertools.count()
        self._endpoint = f"uss:{site}"
        network.connect(self._endpoint, self._on_message)
        self._task: Optional[PeriodicTask] = engine.periodic(
            exchange_interval, self._exchange, start_offset=start_offset)

    records_received = metric_property("records_received")
    records_enqueued = metric_property("records_enqueued")
    records_drained = metric_property("records_drained")
    exchanges_sent = metric_property("exchanges_sent")
    exchanges_received = metric_property("exchanges_received")
    #: reordered/duplicate usage messages dropped (jitter can deliver an
    #: older message after a newer one; applying it would roll state back)
    exchanges_stale = metric_property("exchanges_stale")
    #: publish ticks with no changed entries — only a sequence-number
    #: heartbeat goes out, letting silent peers detect missed deltas
    exchanges_skipped = metric_property("exchanges_skipped")
    resyncs_requested = metric_property("resyncs_requested")
    resyncs_served = metric_property("resyncs_served")
    #: peer incarnation changes detected (daemon restarts with reset seq)
    peer_restarts = metric_property("peer_restarts")

    # -- local recording -------------------------------------------------

    def record_job(self, record: UsageRecord) -> None:
        """Ingest a completed job's usage (from libaequus call-outs)."""
        self._metrics["records_received"].inc()
        self.local.add_record(record)

    def enqueue_record(self, record: UsageRecord) -> None:
        """Thread-safe usage ingress for the serve plane (aequusd).

        Server threads may not touch the histogram directly — every
        mutation must happen on the thread driving this service.  They
        append here instead (``deque.append`` is atomic under the GIL);
        the record lands in the histogram at the next :meth:`drain_ingest`,
        which the exchange tick runs automatically.
        """
        self._metrics["records_enqueued"].inc()
        self._ingest.append(record)

    def drain_ingest(self) -> int:
        """Fold all enqueued records into the local histogram (owner thread)."""
        drained = 0
        while True:
            try:
                record = self._ingest.popleft()
            except IndexError:
                break
            self.record_job(record)
            drained += 1
        self._metrics["records_drained"].inc(drained)
        return drained

    # -- peering -----------------------------------------------------------

    def add_peer(self, site: str) -> None:
        if site == self.site:
            raise ValueError("a USS does not peer with itself")
        if site not in self.peers:
            self.peers.append(site)

    # -- publishing --------------------------------------------------------

    def _exchange(self) -> None:
        timed = self.registry.enabled
        t0 = time.perf_counter() if timed else 0.0
        with trace.span("uss.exchange", site=self.site):
            self._exchange_tick()
        if timed:
            self._exchange_hist.observe(time.perf_counter() - t0)

    def _exchange_tick(self) -> None:
        self.drain_ingest()
        if self.prune_horizon is not None:
            self.charge_pruned += self.local.prune(self.engine.now,
                                                   self.prune_horizon)
            for hist in self.remote.values():
                hist.prune(self.engine.now, self.prune_horizon)
        if self.registry.enabled and self._recv_horizon:
            now = self.engine.now
            for origin, horizon in self._recv_horizon.items():
                child = self._staleness_children.get(origin)
                if child is None:
                    child = self._staleness_family.labels(origin=origin)
                    self._staleness_children[origin] = child
                child.observe(max(0.0, now - horizon))
        if not self.publish or not self.peers:
            return
        if not self.delta_exchange:
            message = UsageExchangeMessage(
                site=self.site,
                sent_at=self.engine.now,
                interval=self.local.interval,
                snapshot=self.local.snapshot(),
                horizon=self.engine.now,
                boot=self.boot_id,
                tctx=self._make_tctx(),
            )
        else:
            message = self._build_delta()
        tctx = message.tctx
        if tctx is None:
            self._send_to_peers(message)
        else:
            # the origin end of the cross-daemon causal chain: collectors
            # match this span's trace id against the remote uss.apply
            with trace.span("uss.publish", trace=tctx["id"],
                            origin=self.site, seq=tctx["seq"],
                            peers=len(self.peers)):
                self._send_to_peers(message)
        self._metrics["exchanges_sent"].inc()

    def _send_to_peers(self, message) -> None:
        for peer in self.peers:
            self.network.send(self._endpoint, f"uss:{peer}", message)

    def _make_tctx(self) -> Optional[Dict[str, Any]]:
        """The compact per-publish trace context (DESIGN.md §14).

        ``None`` when tracing is off — the message then carries (and
        costs) exactly what a pre-trace sender's did.  ``mono`` is the
        origin's monotonic clock (duration alignment), ``vts`` its
        virtual timestamp (fleet alignment via the shared epoch).
        """
        if not trace.default_tracer().enabled:
            return None
        self._pub_count += 1
        return {
            "id": f"{self.site}-{self.boot_id[:6]}-{self._pub_count}",
            "origin": self.site,
            "seq": self._seq,
            "pid": os.getpid(),
            "mono": time.monotonic(),
            "vts": self.engine.now,
        }

    def _build_delta(self) -> UsageDeltaMessage:
        """Next publish: a full snapshot first, then changed entries only.

        A tick with no changes publishes an empty **heartbeat** carrying the
        current sequence number without advancing it: a receiver that is
        behind (a delta was lost to a partition while the sender then went
        idle) detects the gap from the heartbeat and requests a resync —
        without it, loss followed by silence would never be repaired.
        """
        dirty = self.local.drain_cursor(self._exchange_cursor)
        if self._seq == 0:
            self._seq = 1
            return self._full_message()
        if not dirty:
            self._metrics["exchanges_skipped"].inc()
            return UsageDeltaMessage(
                site=self.site, sent_at=self.engine.now,
                interval=self.local.interval, seq=self._seq, full=False,
                horizon=self.engine.now, boot=self.boot_id,
                tctx=self._make_tctx())
        user_table: List[str] = []
        user_idx: List[int] = []
        bin_idx: List[int] = []
        charges: List[float] = []
        for user, bins in dirty.items():
            ui = len(user_table)
            user_table.append(user)
            for b in bins:
                user_idx.append(ui)
                bin_idx.append(b)
                # absolute current value; 0.0 propagates a pruned/deleted bin
                charges.append(self.local.bin_value(user, b))
        self._seq += 1
        return UsageDeltaMessage(
            site=self.site, sent_at=self.engine.now,
            interval=self.local.interval, seq=self._seq, full=False,
            user_table=user_table, user_idx=user_idx, bin_idx=bin_idx,
            charges=charges, horizon=self.engine.now, boot=self.boot_id,
            tctx=self._make_tctx())

    def _full_message(self) -> UsageDeltaMessage:
        user_table, user_idx, bin_idx, charges = self.local.snapshot_arrays()
        return UsageDeltaMessage(
            site=self.site, sent_at=self.engine.now,
            interval=self.local.interval, seq=self._seq, full=True,
            user_table=user_table, user_idx=user_idx, bin_idx=bin_idx,
            charges=charges, horizon=self.engine.now, boot=self.boot_id,
            tctx=self._make_tctx())

    # -- receiving ---------------------------------------------------------

    def _on_message(self, message) -> None:
        if isinstance(message, UsageResyncRequest):
            self._serve_resync(message)
            return
        if message.interval != self.local.interval:
            # Sites must agree on the histogram interval for bins to align;
            # mismatched configurations are dropped (and visible in stats).
            return
        if isinstance(message, UsageDeltaMessage):
            self._on_delta(message)
        else:
            self._on_full_snapshot(message)

    def _remote_histogram(self, site: str) -> UsageHistogram:
        """The persistent per-site histogram, created on first contact.

        Deltas are applied *in place*, so the object must outlive any one
        message; UMS dirty-user cursors attach to it the moment it exists.
        """
        hist = self.remote.get(site)
        if hist is None:
            hist = UsageHistogram(self.local.interval)
            self.remote[site] = hist
            for cursor, per_hist in self._usage_cursors.items():
                if self._usage_cursor_remote[cursor]:
                    per_hist[site] = hist.register_cursor()
        return hist

    def _note_horizon(self, origin: str, horizon: float) -> None:
        """Advance (never roll back) an origin's usage high-watermark."""
        if horizon > self._recv_horizon.get(origin, float("-inf")):
            self._recv_horizon[origin] = horizon

    def _note_boot(self, site: str, boot: Optional[str]) -> bool:
        """Track a peer's incarnation; True when it changed (restart).

        A restarted peer's sequence numbers and ``sent_at`` clock start
        over, so every receiver-side ordering cursor for it is reset —
        otherwise its publishes would compare as stale against the dead
        incarnation's high-watermarks and be dropped forever.  The normal
        gap logic then repairs state: a non-full first contact triggers a
        :class:`~repro.services.messages.UsageResyncRequest`, a full
        snapshot applies directly.
        """
        if boot is None:
            return False
        known = self._recv_boot.get(site)
        self._recv_boot[site] = boot
        if known is None or known == boot:
            return False
        self._metrics["peer_restarts"].inc()
        self._recv_seq[site] = 0
        self._recv_sent_at.pop(site, None)
        return True

    def _on_full_snapshot(self, message: UsageExchangeMessage) -> None:
        """Legacy dict-of-dict full snapshot (``delta_exchange=False`` peers)."""
        self._note_boot(message.site, message.boot)
        last = self._recv_sent_at.get(message.site)
        if last is not None and message.sent_at < last:
            self._metrics["exchanges_stale"].inc()
            return
        self._recv_sent_at[message.site] = message.sent_at
        self._metrics["exchanges_received"].inc()
        self._note_horizon(message.site, message.usage_horizon)
        tctx = message.tctx
        if tctx is None:
            self._remote_histogram(message.site).replace(message.snapshot)
            return
        with trace.span("uss.apply", trace=tctx.get("id"),
                        origin=message.site, site=self.site, full=True,
                        origin_pid=tctx.get("pid"),
                        origin_vts=tctx.get("vts")):
            self._remote_histogram(message.site).replace(message.snapshot)
        self._note_applied_trace(tctx)

    def _on_delta(self, message: UsageDeltaMessage) -> None:
        self._note_boot(message.site, message.boot)
        last = self._recv_seq.get(message.site, 0)
        heartbeat = not message.full and not message.charges
        if message.full:
            if message.seq < last:
                self._metrics["exchanges_stale"].inc()
                return
        else:
            if message.seq <= last:
                if not heartbeat:
                    self._metrics["exchanges_stale"].inc()
                elif message.seq == last:
                    # heartbeat confirming our exact state: nothing changed
                    # at the origin up to its horizon, so our copy is
                    # complete up to that time — freshness advances even
                    # though no data moved
                    self._note_horizon(message.site, message.usage_horizon)
                return  # heartbeat at (or behind) our state: already current
            if heartbeat or last == 0 or message.seq != last + 1:
                # missed at least one publish (partition, drop, late join):
                # state can no longer be patched — ask for a full snapshot.
                # A heartbeat never advances the applied sequence, so the
                # resync reply remains the only way to catch up.
                self._metrics["resyncs_requested"].inc()
                self.network.send(
                    self._endpoint, f"uss:{message.site}",
                    UsageResyncRequest(site=self.site,
                                       sent_at=self.engine.now,
                                       target=message.site))
                return
        self._recv_seq[message.site] = message.seq
        self._recv_sent_at[message.site] = message.sent_at
        self._note_horizon(message.site, message.usage_horizon)
        self._metrics["exchanges_received"].inc()
        tctx = message.tctx
        if tctx is None:
            self._remote_histogram(message.site).apply_arrays(
                message.user_table, message.user_idx, message.bin_idx,
                message.charges, full=message.full)
            return
        # the remote end of the causal chain: same trace id as the
        # origin's uss.publish, recorded from a *different* process
        with trace.span("uss.apply", trace=tctx.get("id"),
                        origin=message.site, site=self.site,
                        seq=message.seq, full=message.full,
                        origin_pid=tctx.get("pid"),
                        origin_vts=tctx.get("vts")):
            self._remote_histogram(message.site).apply_arrays(
                message.user_table, message.user_idx, message.bin_idx,
                message.charges, full=message.full)
        self._note_applied_trace(tctx)

    def _serve_resync(self, request: UsageResyncRequest) -> None:
        if not self.publish or not self.delta_exchange:
            return
        self._metrics["resyncs_served"].inc()
        # current state at the current sequence number; an in-flight delta
        # with the same seq is redundant at the receiver (absolute values)
        if self._seq == 0:
            self._seq = 1
        with trace.span("uss.resync_serve", site=self.site,
                        requester=request.site):
            self.network.send(self._endpoint, f"uss:{request.site}",
                              self._full_message())

    # -- trace propagation -------------------------------------------------

    def _note_applied_trace(self, tctx: Dict[str, Any]) -> None:
        trace_id = tctx.get("id")
        if trace_id:
            self._applied_traces.append(str(trace_id))

    def drain_applied_traces(self) -> List[str]:
        """Trace ids applied since the last drain (exactly-once).

        The UMS pulls these at refresh time and carries them into its
        span args, handing the wire delta's causal identity down the
        UMS → FCS → snapshot chain.
        """
        out: List[str] = []
        while True:
            try:
                out.append(self._applied_traces.popleft())
            except IndexError:
                return out

    # -- queries ----------------------------------------------------------

    def global_usage(self, include_remote: bool = True) -> UsageHistogram:
        """Merged histogram: local plus (optionally) all known remote sites."""
        merged = UsageHistogram(self.local.interval)
        merged.merge(self.local)
        if include_remote:
            for hist in self.remote.values():
                merged.merge(hist)
        return merged

    def known_sites(self) -> List[str]:
        return sorted([self.site, *self.remote])

    # -- freshness ---------------------------------------------------------

    def usage_horizons(self, include_remote: bool = True) -> Dict[str, float]:
        """Per-origin usage high-watermark (virtual time).

        The local origin is always current: every ``record_job`` lands in
        the histogram immediately, so its horizon is ``engine.now`` (serve
        -plane records enqueued from other threads become visible at the
        next drain, which every exchange tick performs).  Remote horizons
        advance only with applied messages and current-seq heartbeats —
        during a partition they stall, which is exactly the signal.
        """
        horizons = {self.site: self.engine.now}
        if include_remote:
            horizons.update(self._recv_horizon)
        return horizons

    def usage_staleness(self, now: Optional[float] = None,
                        include_remote: bool = True) -> Dict[str, float]:
        """Per-origin horizon age: ``now - horizon``, clamped at zero."""
        if now is None:
            now = self.engine.now
        return {origin: max(0.0, now - horizon)
                for origin, horizon
                in self.usage_horizons(include_remote).items()}

    # -- incremental-UMS support ------------------------------------------

    def register_usage_cursor(self, include_remote: bool = True) -> int:
        """Track which users' histograms change (local and, optionally,
        remote) so a UMS can recompute only those on refresh."""
        cursor = next(self._usage_cursor_ids)
        per_hist = {"": self.local.register_cursor()}
        if include_remote:
            for site, hist in self.remote.items():
                per_hist[site] = hist.register_cursor()
        self._usage_cursors[cursor] = per_hist
        self._usage_cursor_remote[cursor] = include_remote
        return cursor

    def drain_dirty_users(self, cursor: int) -> Set[str]:
        """Users changed (on any tracked histogram) since the last drain."""
        dirty: Set[str] = set()
        for site, hist_cursor in self._usage_cursors[cursor].items():
            hist = self.local if site == "" else self.remote[site]
            dirty.update(hist.drain_cursor(hist_cursor))
        return dirty

    def release_usage_cursor(self, cursor: int) -> None:
        per_hist = self._usage_cursors.pop(cursor, None)
        if per_hist is None:
            return
        self._usage_cursor_remote.pop(cursor, None)
        for site, hist_cursor in per_hist.items():
            hist = self.local if site == "" else self.remote.get(site)
            if hist is not None:
                hist.release_cursor(hist_cursor)

    def decayed_user_total(self, user: str, now: float, decay: DecayFunction,
                           include_remote: bool = True) -> Optional[float]:
        """One user's decayed usage across local (+ remote) histograms.

        Returns None when the user holds no bins anywhere — the caller
        drops them from its cache, matching the full-recompute view.
        """
        total = 0.0
        found = False
        if self.local.has_user(user):
            total += self.local.decayed_total(user, now, decay)
            found = True
        if include_remote:
            for hist in self.remote.values():
                if hist.has_user(user):
                    total += hist.decayed_total(user, now, decay)
                    found = True
        return total if found else None

    def decayed_user_totals(self, users: Sequence[str], now: float,
                            decay: DecayFunction,
                            include_remote: bool = True) -> Dict[str, float]:
        """Batched :meth:`decayed_user_total` (one 2-D pass per histogram).

        Users absent from every tracked histogram are absent from the
        result — the caller drops them, matching the per-user API's
        ``None``.
        """
        totals: Dict[str, float] = {}
        histograms = [self.local]
        if include_remote:
            histograms.extend(self.remote.values())
        for hist in histograms:
            for user, value in hist.decayed_totals_batch(
                    users, now, decay).items():
                totals[user] = totals.get(user, 0.0) + value
        return totals

    def newest_user_midpoints_for(self, users: Sequence[str],
                                  include_remote: bool = True
                                  ) -> Dict[str, float]:
        """Newest bin midpoints for a subset of users (batched)."""
        mids: Dict[str, float] = {}
        histograms = [self.local]
        if include_remote:
            histograms.extend(self.remote.values())
        for hist in histograms:
            for user in users:
                m = hist.newest_midpoint(user)
                if m is not None and m > mids.get(user, float("-inf")):
                    mids[user] = m
        return mids

    def newest_user_midpoint(self, user: str,
                             include_remote: bool = True) -> Optional[float]:
        """Newest bin midpoint for a user across tracked histograms."""
        mids = []
        m = self.local.newest_midpoint(user)
        if m is not None:
            mids.append(m)
        if include_remote:
            for hist in self.remote.values():
                m = hist.newest_midpoint(user)
                if m is not None:
                    mids.append(m)
        return max(mids) if mids else None

    def newest_user_midpoints(self, include_remote: bool = True) -> Dict[str, float]:
        """``newest_user_midpoint`` for every known user in one pass."""
        mids = dict(self.local.newest_midpoints())
        if include_remote:
            for hist in self.remote.values():
                for user, m in hist.newest_midpoints().items():
                    if m > mids.get(user, float("-inf")):
                        mids[user] = m
        return mids

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None
        # leave the wire: a stopped USS must not keep receiving (and a
        # restarted instance must be able to claim the endpoint name)
        self.network.disconnect(self._endpoint)
