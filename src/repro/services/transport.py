"""The USS↔USS transport seam.

Sites communicate *only* by exchanging usage data through their USS
services (paper Figure 2); everything the USS protocol needs from the
medium underneath is captured here as :class:`UssTransport`:

* named endpoints (``uss:<site>``) registered with a receive handler;
* fire-and-forget :meth:`send` of a message payload to a named endpoint
  (delivery is asynchronous and may silently fail — the USS protocol's
  sequence numbers and resync requests recover from loss);
* :class:`~repro.services.network.NetworkStats`-compatible traffic
  accounting on ``.stats``;
* :meth:`pump`, which delivers queued inbound messages *on the calling
  thread*.  Every USS mutation must happen on the thread driving its
  engine, so transports that receive on other threads (the TCP peer
  transport's asyncio loop) buffer inbound messages until the engine
  thread pumps them.

Two implementations exist:

:class:`~repro.services.network.Network`
    The in-process simulation bus: delivery is an engine event scheduled
    ``latency()`` seconds out, so a single virtual clock orders sends and
    receipts deterministically.  ``pump()`` is a no-op — the engine *is*
    the pump.

:class:`~repro.grid.transport.TcpUssTransport`
    Real length-prefixed TCP over loopback or LAN: each daemon listens on
    its own port, keeps one outbound connection per peer with automatic
    reconnect/backoff, and queues inbound messages for the engine thread.
    This is what turns N ``aequusd`` processes into an actual grid
    (DESIGN.md §13).

The USS itself is transport-blind: sequence-gap resync, heartbeats,
stale-message drops and restart detection behave identically over both,
which the lockstep equivalence test (``tests/grid/test_equivalence.py``)
pins to 1e-6.
"""

from __future__ import annotations

import abc
from typing import Any, Callable

__all__ = ["UssTransport"]


class UssTransport(abc.ABC):
    """Endpoint-addressed, loss-tolerant message transport between sites."""

    #: traffic accounting (``NetworkStats`` or a compatible object)
    stats: Any

    @abc.abstractmethod
    def connect(self, name: str, handler: Callable[[Any], None]) -> None:
        """Register a local endpoint; inbound messages go to ``handler``."""

    @abc.abstractmethod
    def disconnect(self, name: str) -> None:
        """Remove a local endpoint (unknown names are ignored)."""

    @abc.abstractmethod
    def send(self, src: str, dst: str, message: Any) -> bool:
        """Queue ``message`` from ``src`` to ``dst``.

        Returns False when the transport already knows delivery failed
        (unknown destination, active partition, dead connection with a
        full backlog); True means *queued*, not delivered.
        """

    def pump(self, limit: int = 0) -> int:
        """Deliver buffered inbound messages on the calling thread.

        Returns the number of messages dispatched.  Transports whose
        delivery is driven elsewhere (the sim bus delivers via engine
        events) return 0.  ``limit`` caps one pump (0 = drain).
        """
        return 0

    def close(self) -> None:
        """Release sockets/threads; the sim bus has nothing to release."""
