"""Fairshare Calculation Service (FCS).

Fetches usage trees from the UMS and policy trees from the PDS periodically
and *pre-calculates* fairshare trees with the current fairshare values for
all users (paper Section II-A): "This way, no real-time calculations need to
take place when new jobs arrive, as pre-calculated values already exist and
can be assigned to the job based on the associated user identity."

Queries therefore never trigger computation — they read the last refresh,
whose age is delay source II/IV in the update-delay analysis.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.distance import FairshareParameters
from ..core.fairshare import FairshareTree, compute_fairshare_tree
from ..core.usage import build_usage_tree
from ..core.projection import PercentalProjection, Projection
from ..core.vector import FairshareVector
from ..sim.engine import PeriodicTask, SimulationEngine
from .pds import PolicyDistributionService
from .ums import UsageMonitoringService

__all__ = ["FairshareCalculationService"]


class FairshareCalculationService:
    """Periodic fairshare pre-computation and constant-time value lookup."""

    def __init__(self, site: str, engine: SimulationEngine,
                 pds: PolicyDistributionService,
                 ums: UsageMonitoringService,
                 parameters: Optional[FairshareParameters] = None,
                 projection: Optional[Projection] = None,
                 refresh_interval: float = 30.0,
                 unknown_user_value: float = 0.5,
                 identity_map: Optional[Dict[str, str]] = None,
                 start_offset: float = 0.0):
        self.site = site
        self.engine = engine
        self.pds = pds
        self.ums = ums
        self.parameters = parameters or FairshareParameters()
        self.projection = projection or PercentalProjection()
        self.refresh_interval = refresh_interval
        self.unknown_user_value = unknown_user_value
        self.identity_map: Dict[str, str] = dict(identity_map or {})
        self.refreshes = 0
        self._tree: Optional[FairshareTree] = None
        self._values: Dict[str, float] = {}
        self._by_name: Dict[str, str] = {}
        self._computed_at: float = engine.now
        self._task: Optional[PeriodicTask] = engine.periodic(
            refresh_interval, self.refresh, start_offset=start_offset)
        self.refresh()

    # -- the periodic pre-computation -----------------------------------------

    def refresh(self) -> None:
        policy = self.pds.policy()
        # usage is recorded under external grid identities; fold aliases
        # onto policy leaves before shaping the usage tree
        totals: Dict[str, float] = {}
        for user, value in self.ums.usage_totals().items():
            key = self.identity_map.get(user, user)
            totals[key] = totals.get(key, 0.0) + value
        usage_tree = build_usage_tree(policy, totals)
        tree = compute_fairshare_tree(policy, usage=usage_tree,
                                      parameters=self.parameters)
        self._tree = tree
        self._values = self.projection.project(tree)
        self._by_name = {}
        for leaf in tree.leaves():
            self._by_name.setdefault(leaf.name, leaf.path)
        self._computed_at = self.engine.now
        self.refreshes += 1

    def set_projection(self, projection: Projection) -> None:
        """Switch projection algorithm (run-time configurable, Sec. III-C)."""
        self.projection = projection
        if self._tree is not None:
            self._values = projection.project(self._tree)

    # -- queries (constant-time, from pre-computed state) ------------------

    @property
    def computed_at(self) -> float:
        return self._computed_at

    def register_identity(self, identity: str, leaf: str) -> None:
        """Alias an external grid identity (e.g. an X.509 DN, which cannot
        be a tree node name) to a policy leaf name or path."""
        self.identity_map[identity] = leaf

    def _resolve_path(self, identity: str) -> Optional[str]:
        identity = self.identity_map.get(identity, identity)
        if identity.startswith("/") and self._tree is not None and identity in self._tree:
            return identity
        return self._by_name.get(identity)

    def fairshare_value(self, identity: str) -> float:
        """Projected scalar in [0, 1] for a grid identity (leaf path or name)."""
        path = self._resolve_path(identity)
        if path is None:
            return self.unknown_user_value
        return self._values.get(path, self.unknown_user_value)

    def priority(self, identity: str) -> float:
        """The leaf-node fairshare priority (k·abs + (1−k)·rel)."""
        path = self._resolve_path(identity)
        if path is None or self._tree is None:
            return self.unknown_user_value
        return self._tree.priority(path)

    def vector(self, identity: str) -> Optional[FairshareVector]:
        path = self._resolve_path(identity)
        if path is None or self._tree is None:
            return None
        return self._tree.vector(path)

    def values(self) -> Dict[str, float]:
        """All users' projected values (leaf path -> value)."""
        return dict(self._values)

    def tree(self) -> Optional[FairshareTree]:
        return self._tree

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None
