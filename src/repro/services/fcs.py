"""Fairshare Calculation Service (FCS).

Fetches usage trees from the UMS and policy trees from the PDS periodically
and *pre-calculates* fairshare trees with the current fairshare values for
all users (paper Section II-A): "This way, no real-time calculations need to
take place when new jobs arrive, as pre-calculated values already exist and
can be assigned to the job based on the associated user identity."

Queries therefore never trigger computation — they read the last refresh,
whose age is delay source II/IV in the update-delay analysis.

The refresh itself runs on the array-backed kernel (:mod:`repro.core.flat`):
the policy tree is compiled to parallel arrays once per policy epoch and
each refresh is a handful of vectorized segment operations.  When neither
the policy epoch nor the digest of (alias-folded) usage totals has changed
since the last refresh, the whole computation is skipped — idle sites pay a
set comparison instead of three tree rebuilds per period.  Hits and misses
are tracked in :attr:`FairshareCalculationService.refresh_stats`.
"""

from __future__ import annotations

import logging
import time
from types import MappingProxyType
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..core.distance import FairshareParameters
from ..core.fairshare import FairshareTree
from ..core.flat import FlatFairshare, FlatPolicy
from ..core.projection import PercentalProjection, Projection
from ..core.vector import FairshareVector
from ..obs import trace
from ..obs.registry import AGE_BUCKETS, MetricsRegistry, metric_property
from ..sim.engine import PeriodicTask, SimulationEngine
from .cache import RegistryCacheStats, usage_digest
from .pds import PolicyDistributionService
from .ums import UsageMonitoringService

__all__ = ["FairshareCalculationService"]

logger = logging.getLogger(__name__)


class FairshareCalculationService:
    """Periodic fairshare pre-computation and constant-time value lookup."""

    def __init__(self, site: str, engine: SimulationEngine,
                 pds: PolicyDistributionService,
                 ums: UsageMonitoringService,
                 parameters: Optional[FairshareParameters] = None,
                 projection: Optional[Projection] = None,
                 refresh_interval: float = 30.0,
                 unknown_user_value: float = 0.5,
                 identity_map: Optional[Dict[str, str]] = None,
                 start_offset: float = 0.0,
                 registry: Optional[MetricsRegistry] = None):
        self.site = site
        self.engine = engine
        self.pds = pds
        self.ums = ums
        self.parameters = parameters or FairshareParameters()
        self.projection = projection or PercentalProjection()
        self.refresh_interval = refresh_interval
        self.unknown_user_value = unknown_user_value
        self.identity_map: Dict[str, str] = dict(identity_map or {})
        self.registry = registry if registry is not None else MetricsRegistry(
            constant_labels={"site": site}, clock=lambda: engine.now)
        self._metrics = {
            "refreshes": self.registry.counter(
                "aequus_fcs_refreshes_total",
                "FCS refresh rounds (cached-epoch hits included)").labels(),
            "publishes": self.registry.counter(
                "aequus_fcs_publishes_total",
                "Snapshot publications to refresh listeners").labels(),
        }
        refresh_seconds = self.registry.histogram(
            "aequus_refresh_seconds",
            "FCS refresh wall time by phase (compile/rollup/project/total)",
            ("phase",))
        self._phase_hist = {
            phase: refresh_seconds.labels(phase=phase)
            for phase in ("compile", "rollup", "project", "total")}
        self._staleness_family = self.registry.histogram(
            "aequus_snapshot_staleness_seconds",
            "Per-origin usage-horizon age (virtual seconds) of each "
            "published fairshare state — the end-to-end update-delay "
            "distribution of the paper's Fig. 11", ("origin",),
            buckets=AGE_BUCKETS)
        self._staleness_children: Dict[str, object] = {}
        #: unchanged-epoch refreshes skipped vs. full recomputations
        self.refresh_stats = RegistryCacheStats(self.registry, "fcs_refresh")
        #: wall seconds and cache outcome of the most recent refresh — the
        #: daemon's per-refresh structured log line reads these
        self.last_refresh_seconds: float = 0.0
        self.last_refresh_hit: bool = False
        #: distinct bare leaf names shadowed by an earlier same-named leaf
        #: in the current policy (resolvable only via their full path)
        self.name_collisions = 0
        #: leaf-table generation: bumps whenever the policy is recompiled,
        #: i.e. whenever leaf row numbers may change.  The serve plane's
        #: binary protocol tags integer leaf ids with this so a client
        #: holding ids from an old layout gets EPOCH_CHANGED, not a wrong
        #: user's value.
        self.leaf_generation = 0
        self._flat: Optional[FlatPolicy] = None
        self._flat_epoch: Optional[tuple] = None
        self._result: Optional[FlatFairshare] = None
        self._refresh_key: Optional[Tuple[tuple, frozenset]] = None
        self._tree_cache: Optional[FairshareTree] = None
        self._values: Dict[str, float] = {}
        self._values_vec: Optional["np.ndarray"] = None
        self._by_name: Dict[str, str] = {}
        self._computed_at: float = engine.now
        #: per-origin usage horizons incorporated by the served values
        #: (the UMS's refresh-time capture, inherited on every refresh)
        self._horizons: Dict[str, float] = {}
        #: serve-plane publication hook: called after every refresh (hit or
        #: miss) with this FCS; listeners must not mutate FCS state
        self._refresh_listeners: List[Callable[
            ["FairshareCalculationService"], None]] = []
        self._task: Optional[PeriodicTask] = engine.periodic(
            refresh_interval, self.refresh, start_offset=start_offset)
        self.refresh()

    #: FCS refresh rounds, including cached-epoch hits (registry view)
    refreshes = metric_property("refreshes")
    #: monotone snapshot publication counter (bumps even on cached-epoch
    #: refreshes and projection switches, unlike :attr:`refreshes`)
    publishes = metric_property("publishes")

    # -- the periodic pre-computation -----------------------------------------

    def refresh(self) -> None:
        timed = self.registry.enabled
        t_start = time.perf_counter() if timed else 0.0
        with trace.span("fcs.refresh", site=self.site) as sp:
            self._refresh(timed, sp)
        if timed:
            self.last_refresh_seconds = time.perf_counter() - t_start
            self._phase_hist["total"].observe(self.last_refresh_seconds)

    def _refresh(self, timed: bool, sp: Optional[Dict] = None) -> None:
        epoch = self.pds.policy_epoch()
        # usage is recorded under external grid identities; fold aliases
        # onto policy leaves before shaping the usage vector
        totals: Dict[str, float] = {}
        for user, value in self.ums.usage_totals().items():
            key = self.identity_map.get(user, user)
            totals[key] = totals.get(key, 0.0) + value
        refresh_key = (epoch, usage_digest(totals))
        if self._result is not None and refresh_key == self._refresh_key:
            # idle fast path: same policy epoch, same usage — the previous
            # refresh's values are still exact, only the timestamp moves
            self.refresh_stats.hits += 1
            self.last_refresh_hit = True
            if sp is not None:
                sp["cache"] = "hit"
            self._computed_at = self.engine.now
            self._capture_horizons()
            self._metrics["refreshes"].inc()
            self._notify_listeners()
            return
        self.refresh_stats.misses += 1
        self.last_refresh_hit = False
        if sp is not None:
            sp["cache"] = "miss"
        if self._flat is None or self._flat_epoch != epoch:
            with trace.span("fcs.compile", site=self.site):
                t0 = time.perf_counter() if timed else 0.0
                self._flat = FlatPolicy(self.pds.policy())
                if timed:
                    self._phase_hist["compile"].observe(
                        time.perf_counter() - t0)
            self._flat_epoch = epoch
            self.leaf_generation += 1
            self.name_collisions = self._flat.name_collisions
            if self._flat.name_collisions:
                logger.warning(
                    "site %s: %d bare user name(s) shadowed by duplicates in "
                    "the policy; shadowed leaves resolve only via full paths",
                    self.site, self._flat.name_collisions)
        with trace.span("fcs.rollup", site=self.site):
            t0 = time.perf_counter() if timed else 0.0
            self._result = self._flat.compute(totals, self.parameters)
            if timed:
                self._phase_hist["rollup"].observe(time.perf_counter() - t0)
        with trace.span("fcs.project", site=self.site):
            t0 = time.perf_counter() if timed else 0.0
            self._values_vec = self.projection.project_flat_array(
                self._result)
            self._values = dict(zip(self._result.leaf_paths,
                                    self._values_vec.tolist()))
            if timed:
                self._phase_hist["project"].observe(time.perf_counter() - t0)
        self._by_name = dict(self._flat.by_name)
        self._tree_cache = None
        self._refresh_key = refresh_key
        self._computed_at = self.engine.now
        self._capture_horizons()
        self._metrics["refreshes"].inc()
        self._notify_listeners()

    def _capture_horizons(self) -> None:
        """Inherit the UMS's refresh-time horizon set and observe each
        origin's age — the continuously exported Fig. 11 distribution.

        On a cached-epoch hit the *values* are unchanged but the horizons
        still advance (idle origins keep heartbeating), so the capture
        runs on both refresh paths.  Stub UMSes without horizon support
        (benchmark isolation harnesses) leave the set empty.
        """
        getter = getattr(self.ums, "usage_horizons", None)
        if getter is None:
            return
        horizons = getter()
        self._horizons = horizons
        if self.registry.enabled and horizons:
            now = self.engine.now
            for origin, h in horizons.items():
                child = self._staleness_children.get(origin)
                if child is None:
                    child = self._staleness_family.labels(origin=origin)
                    self._staleness_children[origin] = child
                child.observe(max(0.0, now - h))

    def set_projection(self, projection: Projection) -> None:
        """Switch projection algorithm (run-time configurable, Sec. III-C)."""
        self.projection = projection
        if self._result is not None:
            self._values_vec = projection.project_flat_array(self._result)
            self._values = dict(zip(self._result.leaf_paths,
                                    self._values_vec.tolist()))
            self._notify_listeners()

    # -- serve-plane publication hook ---------------------------------------

    def _notify_listeners(self) -> None:
        self._metrics["publishes"].inc()
        for listener in self._refresh_listeners:
            listener(self)

    def add_refresh_listener(self, listener: Callable[
            ["FairshareCalculationService"], None],
            fire_now: bool = True) -> None:
        """Register a post-refresh callback (snapshot publication hook).

        Listeners run synchronously at the end of every :meth:`refresh`
        (including cached-epoch hits, whose timestamp still moves) and on
        :meth:`set_projection`.  With ``fire_now`` the listener is also
        invoked immediately so a late subscriber sees the current state.
        """
        self._refresh_listeners.append(listener)
        if fire_now:
            listener(self)

    # -- queries (constant-time, from pre-computed state) ------------------

    @property
    def computed_at(self) -> float:
        return self._computed_at

    def usage_horizons(self) -> Dict[str, float]:
        """Per-origin usage horizons incorporated by the served values.

        For each known origin site, the virtual time up to which that
        site's usage is reflected in the current fairshare state; the gap
        to ``engine.now`` is the live update delay (Fig. 11).
        """
        return dict(self._horizons)

    def register_identity(self, identity: str, leaf: str) -> None:
        """Alias an external grid identity (e.g. an X.509 DN, which cannot
        be a tree node name) to a policy leaf name or path."""
        self.identity_map[identity] = leaf

    def _resolve_path(self, identity: str) -> Optional[str]:
        identity = self.identity_map.get(identity, identity)
        if identity.startswith("/") and self._flat is not None \
                and identity in self._flat.path_index:
            return identity
        return self._by_name.get(identity)

    def lookup(self, identity: str) -> Tuple[float, bool]:
        """Projected value plus whether the identity is actually known.

        The fallback value for unknown identities is indistinguishable from
        a real mid-range value, so callers that need to count negative
        lookups (libaequus cache stats, the serve plane's UNKNOWN_USER
        replies) use this instead of :meth:`fairshare_value`.
        """
        path = self._resolve_path(identity)
        if path is None:
            return self.unknown_user_value, False
        value = self._values.get(path)
        if value is None:
            return self.unknown_user_value, False
        return value, True

    def fairshare_value(self, identity: str) -> float:
        """Projected scalar in [0, 1] for a grid identity (leaf path or name)."""
        return self.lookup(identity)[0]

    def priority(self, identity: str) -> float:
        """The leaf-node fairshare priority (k·abs + (1−k)·rel)."""
        path = self._resolve_path(identity)
        if path is None or self._result is None:
            return self.unknown_user_value
        return self._result.node_priority(path)

    def vector(self, identity: str) -> Optional[FairshareVector]:
        path = self._resolve_path(identity)
        if path is None or self._result is None:
            return None
        if path in self._result.flat.leaf_slot:
            return self._result.vector(path)
        # internal-node paths go through the materialized view (rare)
        return self.tree().vector(path)  # type: ignore[union-attr]

    def values(self) -> Dict[str, float]:
        """All users' projected values (leaf path -> value)."""
        return dict(self._values)

    def values_view(self) -> Mapping[str, float]:
        """Zero-copy read-only view of the current values.

        Refreshes replace the underlying dict wholesale (never mutate it),
        so a view taken now remains a consistent picture of this refresh
        even after later refreshes land — the basis of snapshot atomicity.
        """
        return MappingProxyType(self._values)

    def values_array(self) -> Optional[np.ndarray]:
        """Projected values as a float64 array aligned with
        ``flat_result().leaf_paths``.

        Like :meth:`values_view`, refreshes replace the array wholesale —
        a reference taken now stays a consistent picture of this refresh.
        Consumers comparing several sites' values against one shared
        policy (the fairness recorder's cross-site divergence) read this
        instead of walking the per-user dict.
        """
        return self._values_vec

    def names_view(self) -> Mapping[str, str]:
        """Read-only view of the bare-name -> leaf-path index."""
        return MappingProxyType(self._by_name)

    @property
    def snapshot_epoch(self):
        """Policy epoch of the last refresh (None before the first)."""
        return self._refresh_key[0] if self._refresh_key is not None else None

    def tree(self) -> Optional[FairshareTree]:
        """The classic object-tree view of the last refresh (lazy)."""
        if self._result is None:
            return None
        if self._tree_cache is None:
            self._tree_cache = self._result.to_tree()
        return self._tree_cache

    def flat_result(self) -> Optional[FlatFairshare]:
        """The array-backed result of the last refresh."""
        return self._result

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None
