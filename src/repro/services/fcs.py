"""Fairshare Calculation Service (FCS).

Fetches usage trees from the UMS and policy trees from the PDS periodically
and *pre-calculates* fairshare trees with the current fairshare values for
all users (paper Section II-A): "This way, no real-time calculations need to
take place when new jobs arrive, as pre-calculated values already exist and
can be assigned to the job based on the associated user identity."

Queries therefore never trigger computation — they read the last refresh,
whose age is delay source II/IV in the update-delay analysis.

The refresh itself runs on the array-backed kernel (:mod:`repro.core.flat`)
and is **incremental end to end** (DESIGN.md §12):

* *Usage*: the FCS subscribes to the UMS's totals cursor and folds only the
  users whose base totals changed into its alias-folded usage state — a
  monotone ``usage_version`` counter replaces the per-refresh O(users)
  frozenset digest.  Pure decay aging moves the UMS's global scale, not the
  bases; usage shares (and therefore priorities and projected values) are
  scale-invariant, so an idle site under exponential decay now *hits* the
  refresh cache instead of recomputing every period.
* *Policy*: on an epoch change the FCS asks the policy tree for its edit
  journal since the last compile and splices the compiled arrays
  (:meth:`~repro.core.flat.FlatPolicy.recompile`) instead of recompiling
  from scratch; weight-only edits keep the layout (and the serve plane's
  leaf ids) intact.  Structural or journal-exhausted changes fall back to
  a full compile.  The chosen path is counted in
  ``aequus_compile_total{kind=full|incremental|fallback}``.
* *Compute*: with the layout unchanged, only the dirty leaves' ancestor
  chains and their sibling groups are re-evaluated
  (:meth:`~repro.core.flat.FlatPolicy.compute_delta`); the touched-node
  fraction of each miss is exported as a gauge.

Hits and misses are tracked in
:attr:`FairshareCalculationService.refresh_stats`.  UMS stand-ins without
the cursor API (benchmark harnesses, stubs) transparently get the legacy
digest-and-full-compute path.
"""

from __future__ import annotations

import logging
import time
from types import MappingProxyType
from typing import Callable, Dict, List, Mapping, Optional, Set, Tuple

import numpy as np

from ..core.distance import FairshareParameters
from ..core.fairshare import FairshareTree
from ..core.flat import FlatFairshare, FlatPolicy
from ..core.projection import PercentalProjection, Projection
from ..core.vector import FairshareVector
from ..obs import trace
from ..obs.registry import AGE_BUCKETS, MetricsRegistry, metric_property
from ..sim.engine import PeriodicTask, SimulationEngine
from .cache import LeafValueMap, RegistryCacheStats, usage_digest
from .pds import PolicyDistributionService
from .ums import UsageMonitoringService

__all__ = ["FairshareCalculationService"]

logger = logging.getLogger(__name__)


class FairshareCalculationService:
    """Periodic fairshare pre-computation and constant-time value lookup."""

    def __init__(self, site: str, engine: SimulationEngine,
                 pds: PolicyDistributionService,
                 ums: UsageMonitoringService,
                 parameters: Optional[FairshareParameters] = None,
                 projection: Optional[Projection] = None,
                 refresh_interval: float = 30.0,
                 unknown_user_value: float = 0.5,
                 identity_map: Optional[Dict[str, str]] = None,
                 start_offset: float = 0.0,
                 incremental: bool = True,
                 registry: Optional[MetricsRegistry] = None):
        self.site = site
        self.engine = engine
        self.pds = pds
        self.ums = ums
        self.parameters = parameters or FairshareParameters()
        self.projection = projection or PercentalProjection()
        self.refresh_interval = refresh_interval
        self.unknown_user_value = unknown_user_value
        self.identity_map: Dict[str, str] = dict(identity_map or {})
        self.registry = registry if registry is not None else MetricsRegistry(
            constant_labels={"site": site}, clock=lambda: engine.now)
        compiles = self.registry.counter(
            "aequus_compile_total",
            "Policy compilations by path: full first compiles, incremental "
            "journal splices, and fallbacks (journal gap, structural "
            "overflow, name clash)", ("kind",))
        self._metrics = {
            "refreshes": self.registry.counter(
                "aequus_fcs_refreshes_total",
                "FCS refresh rounds (cached-epoch hits included)").labels(),
            "publishes": self.registry.counter(
                "aequus_fcs_publishes_total",
                "Snapshot publications to refresh listeners").labels(),
            "compile_full": compiles.labels(kind="full"),
            "compile_incremental": compiles.labels(kind="incremental"),
            "compile_fallback": compiles.labels(kind="fallback"),
        }
        self._dirty_fraction_gauge = self.registry.gauge(
            "aequus_refresh_dirty_fraction",
            "Fraction of flat-tree nodes re-evaluated by the most recent "
            "refresh miss (1.0 = full recompute)").labels()
        refresh_seconds = self.registry.histogram(
            "aequus_refresh_seconds",
            "FCS refresh wall time by phase (compile/rollup/project/total)",
            ("phase",))
        self._phase_hist = {
            phase: refresh_seconds.labels(phase=phase)
            for phase in ("compile", "rollup", "project", "total")}
        self._staleness_family = self.registry.histogram(
            "aequus_snapshot_staleness_seconds",
            "Per-origin usage-horizon age (virtual seconds) of each "
            "published fairshare state — the end-to-end update-delay "
            "distribution of the paper's Fig. 11", ("origin",),
            buckets=AGE_BUCKETS)
        self._staleness_children: Dict[str, object] = {}
        #: unchanged-epoch refreshes skipped vs. full recomputations
        self.refresh_stats = RegistryCacheStats(self.registry, "fcs_refresh")
        #: wall seconds and cache outcome of the most recent refresh — the
        #: daemon's per-refresh structured log line reads these
        self.last_refresh_seconds: float = 0.0
        self.last_refresh_hit: bool = False
        #: distinct bare leaf names shadowed by an earlier same-named leaf
        #: in the current policy (resolvable only via their full path)
        self.name_collisions = 0
        #: leaf-table generation: bumps whenever the policy is recompiled,
        #: i.e. whenever leaf row numbers may change.  The serve plane's
        #: binary protocol tags integer leaf ids with this so a client
        #: holding ids from an old layout gets EPOCH_CHANGED, not a wrong
        #: user's value.
        self.leaf_generation = 0
        self._flat: Optional[FlatPolicy] = None
        self._flat_epoch: Optional[tuple] = None
        #: journal coordinates of the compiled layout: which PolicyTree
        #: instance it came from and at which revision — the anchor for
        #: :meth:`~repro.core.policy.PolicyTree.edits_since`
        self._flat_token: Optional[int] = None
        self._flat_revision: int = -1
        self._result: Optional[FlatFairshare] = None
        #: UMS decay scale the current result's absolute usage is at
        self._result_scale: float = 1.0
        self._refresh_key: Optional[tuple] = None
        self._tree_cache: Optional[FairshareTree] = None
        self._values: Mapping[str, float] = {}
        self._values_vec: Optional["np.ndarray"] = None
        # -- incremental usage fold (UMSes exposing the totals-cursor API) --
        #: kill switch: ``incremental=False`` forces the legacy
        #: digest-and-full-compute refresh on every round
        self.incremental = incremental
        self._ums_cursor: Optional[int] = None
        register = getattr(ums, "register_totals_cursor", None)
        if incremental and register is not None \
                and hasattr(ums, "usage_totals_base") \
                and hasattr(ums, "usage_scale"):
            self._ums_cursor = register()
        #: alias-folded scale-invariant usage (policy key -> base total)
        self._fold: Dict[str, float] = {}
        #: users currently contributing to each alias-targeted key
        self._key_users: Dict[str, Set[str]] = {}
        self._alias_keys: Set[str] = set(self.identity_map.values())
        self._fold_invalid = True
        #: monotone usage state counter — the incremental replacement for
        #: the frozenset digest; bumps exactly when the fold changes
        self._usage_version = 0
        #: base usage per compiled leaf row (None until first compile)
        self._leaf_base: Optional[np.ndarray] = None
        self._by_name: Dict[str, str] = {}
        self._computed_at: float = engine.now
        #: per-origin usage horizons incorporated by the served values
        #: (the UMS's refresh-time capture, inherited on every refresh)
        self._horizons: Dict[str, float] = {}
        #: serve-plane publication hook: called after every refresh (hit or
        #: miss) with this FCS; listeners must not mutate FCS state
        self._refresh_listeners: List[Callable[
            ["FairshareCalculationService"], None]] = []
        #: wire trace ids awaiting their snapshot.publish span
        self._pending_traces: List[str] = []
        self._task: Optional[PeriodicTask] = engine.periodic(
            refresh_interval, self.refresh, start_offset=start_offset)
        self.refresh()

    #: FCS refresh rounds, including cached-epoch hits (registry view)
    refreshes = metric_property("refreshes")
    #: monotone snapshot publication counter (bumps even on cached-epoch
    #: refreshes and projection switches, unlike :attr:`refreshes`)
    publishes = metric_property("publishes")

    # -- the periodic pre-computation -----------------------------------------

    def refresh(self) -> None:
        timed = self.registry.enabled
        t_start = time.perf_counter() if timed else 0.0
        with trace.span("fcs.refresh", site=self.site) as sp:
            # claim the wire trace ids the UMS folded in since our last
            # refresh: they annotate this span and the snapshot.publish
            # child, completing the cross-daemon causal chain
            drain = getattr(self.ums, "drain_applied_traces", None)
            if drain is not None:
                traces = drain()
                if traces:
                    self._pending_traces.extend(traces)
                    if sp is not None:
                        sp["traces"] = traces
            self._refresh(timed, sp)
        if timed:
            self.last_refresh_seconds = time.perf_counter() - t_start
            self._phase_hist["total"].observe(self.last_refresh_seconds)

    def _refresh(self, timed: bool, sp: Optional[Dict] = None) -> None:
        epoch = self.pds.policy_epoch()
        if self._ums_cursor is not None:
            # incremental usage state: fold only the users whose base
            # totals changed; the monotone version counter IS the digest
            changed_keys = self._update_fold()
            scale = self.ums.usage_scale()
            refresh_key = (epoch, self._usage_version)
        else:
            # legacy stub-UMS path: usage is recorded under external grid
            # identities; fold aliases onto policy leaves and digest the
            # folded totals exactly
            totals: Dict[str, float] = {}
            for user, value in self.ums.usage_totals().items():
                key = self.identity_map.get(user, user)
                totals[key] = totals.get(key, 0.0) + value
            self._fold = totals
            changed_keys = None
            scale = 1.0
            refresh_key = (epoch, usage_digest(totals))
        if self._result is not None and refresh_key == self._refresh_key:
            # idle fast path: same policy epoch, same usage state — shares,
            # priorities and projected values are scale-invariant, so pure
            # decay aging leaves them exact; only the absolute usage view
            # needs catching up to the moved scale (two array multiplies)
            self.refresh_stats.hits += 1
            self.last_refresh_hit = True
            if sp is not None:
                sp["cache"] = "hit"
            if scale != self._result_scale:
                self._result = self._rescaled(
                    self._result, scale / self._result_scale)
                self._result_scale = scale
                self._tree_cache = None
            self._computed_at = self.engine.now
            self._capture_horizons()
            self._metrics["refreshes"].inc()
            self._notify_listeners()
            return
        self.refresh_stats.misses += 1
        self.last_refresh_hit = False
        if sp is not None:
            sp["cache"] = "miss"

        # -- policy: full compile, journal splice, or keep ------------------
        policy = self.pds.policy()
        layout_changed = False
        target_dirty: Optional[np.ndarray] = None
        if self._flat is None or \
                getattr(policy, "journal_token", None) != self._flat_token:
            self._compile_full(policy, epoch, timed, kind="full")
            layout_changed = True
        elif epoch != self._flat_epoch:
            if not self.incremental:
                self._compile_full(policy, epoch, timed, kind="full")
                layout_changed = True
            elif policy.revision != self._flat_revision:
                edits = policy.edits_since(self._flat_revision)
                spliced = None
                if edits:
                    with trace.span("fcs.compile", site=self.site):
                        t0 = time.perf_counter() if timed else 0.0
                        spliced = self._flat.recompile(policy, edits)
                        if timed and spliced is not None:
                            self._phase_hist["compile"].observe(
                                time.perf_counter() - t0)
                if edits is None or (edits and spliced is None):
                    # journal gap, too many edits, structural overflow or a
                    # bare-name clash: recompile from scratch
                    self._compile_full(policy, epoch, timed, kind="fallback")
                    layout_changed = True
                elif not edits:
                    # epoch moved without content changes (e.g. an
                    # identical-subtree mount refresh): everything stands
                    self._flat_revision = policy.revision
                    self._flat_epoch = epoch
                else:
                    new_flat, info = spliced
                    self._metrics["compile_incremental"].inc()
                    self._flat = new_flat
                    self._flat_revision = policy.revision
                    self._flat_epoch = epoch
                    layout_changed = bool(info["layout_changed"])
                    target_dirty = info.get("target_dirty")
                    if layout_changed:
                        # leaf row numbers may have moved: new serve-plane
                        # generation.  Weight-only splices keep the layout
                        # and therefore the published leaf ids.
                        self.leaf_generation += 1
                        self.name_collisions = new_flat.name_collisions
            else:
                self._flat_epoch = epoch

        # -- usage: dense leaf vector, maintained per changed key -----------
        full_compute = self._result is None or changed_keys is None
        if layout_changed or changed_keys is None or self._leaf_base is None:
            self._leaf_base = self._flat.leaf_usage_vector(self._fold)
            full_compute = True
        dirty_rows: List[int] = []
        if not full_compute and changed_keys:
            for key in changed_keys:
                row = self._leaf_row(key)
                if row is not None:
                    self._leaf_base[row] = self._fold.get(key, 0.0)
                    dirty_rows.append(row)

        # -- compute: full kernel pass or dirty-segment delta ---------------
        with trace.span("fcs.rollup", site=self.site):
            t0 = time.perf_counter() if timed else 0.0
            if full_compute:
                served = self._leaf_base * scale if scale != 1.0 \
                    else self._leaf_base
                self._result = self._flat.compute(
                    leaf_usage=served, parameters=self.parameters)
                touched = self._flat.n_nodes
            else:
                prev = self._result
                if scale != self._result_scale:
                    prev = self._rescaled(prev, scale / self._result_scale)
                rows = np.asarray(sorted(set(dirty_rows)), dtype=np.int64)
                self._result = self._flat.compute_delta(
                    prev, rows, self._leaf_base[rows] * scale,
                    self.parameters, extra_dirty_nodes=target_dirty)
                touched = self._result.touched_nodes or 0
            self._result_scale = scale
            if self.registry.enabled:
                self._dirty_fraction_gauge.set(
                    touched / self._flat.n_nodes if self._flat.n_nodes
                    else 0.0)
            if timed:
                self._phase_hist["rollup"].observe(time.perf_counter() - t0)
        with trace.span("fcs.project", site=self.site):
            t0 = time.perf_counter() if timed else 0.0
            self._values_vec = self.projection.project_flat_array(
                self._result)
            self._values = LeafValueMap(self._flat.leaf_paths,
                                        self._flat.leaf_slot,
                                        self._values_vec)
            if timed:
                self._phase_hist["project"].observe(time.perf_counter() - t0)
        self._by_name = self._flat.by_name
        self._tree_cache = None
        self._refresh_key = refresh_key
        self._computed_at = self.engine.now
        self._capture_horizons()
        self._metrics["refreshes"].inc()
        self._notify_listeners()

    def _compile_full(self, policy, epoch: tuple, timed: bool,
                      kind: str) -> None:
        """Compile the policy from scratch and re-anchor the journal."""
        with trace.span("fcs.compile", site=self.site):
            t0 = time.perf_counter() if timed else 0.0
            self._flat = FlatPolicy(policy)
            if timed:
                self._phase_hist["compile"].observe(time.perf_counter() - t0)
        self._metrics["compile_%s" % kind].inc()
        self._flat_epoch = epoch
        self._flat_token = getattr(policy, "journal_token", None)
        self._flat_revision = getattr(policy, "revision", -1)
        self.leaf_generation += 1
        self.name_collisions = self._flat.name_collisions
        if self._flat.name_collisions:
            logger.warning(
                "site %s: %d bare user name(s) shadowed by duplicates in "
                "the policy; shadowed leaves resolve only via full paths",
                self.site, self._flat.name_collisions)

    @staticmethod
    def _rescaled(result: FlatFairshare, ratio: float) -> FlatFairshare:
        """``result`` with its absolute usage advanced by a decay ratio.

        Shares, priorities and balances are scale-invariant and shared
        with the input; published results are never mutated in place
        (serve-plane snapshots may still reference them).
        """
        gsum = result.group_usage_sum
        return FlatFairshare(
            result.flat, result.parameters, result.usage * ratio,
            result.usage_share, result.priority, result.balance,
            group_usage_sum=None if gsum is None else gsum * ratio,
            touched_nodes=result.touched_nodes)

    # -- incremental usage fold ---------------------------------------------

    def _leaf_row(self, key: str) -> Optional[int]:
        """Leaf row a folded usage key lands on (None when unknown)."""
        flat = self._flat
        path = key if key.startswith("/") else flat.by_name.get(key)
        if path is None:
            return None
        return flat.leaf_slot.get(path)

    def _update_fold(self) -> Optional[set]:
        """Drain the UMS totals cursor into the alias-folded usage state.

        Returns the set of folded keys whose base totals changed, or None
        when the fold was rebuilt from scratch (resync: everything may
        have changed).  Bumps :attr:`_usage_version` iff the fold moved.
        """
        full, changed = self.ums.drain_totals_changes(self._ums_cursor)
        if full or self._fold_invalid:
            return self._rebuild_fold()
        if not changed:
            return set()
        base_view = self.ums.usage_totals_base()
        changed_keys: set = set()
        for user, base in changed.items():
            key = self.identity_map.get(user, user)
            if key in self._alias_keys:
                # several identities may fold onto this key: re-sum its
                # contributors (alias groups are small)
                users = self._key_users.setdefault(key, set())
                if base is None:
                    users.discard(user)
                else:
                    users.add(user)
                total = 0.0
                found = False
                for contributor in users:
                    b = base_view.get(contributor)
                    if b is not None:
                        total += b
                        found = True
                old = self._fold.get(key)
                if not found:
                    if old is not None:
                        del self._fold[key]
                        changed_keys.add(key)
                elif old != total:
                    self._fold[key] = total
                    changed_keys.add(key)
            else:
                # key == user and nothing else folds here
                old = self._fold.get(key)
                if base is None:
                    if old is not None:
                        del self._fold[key]
                        changed_keys.add(key)
                elif old != base:
                    self._fold[key] = base
                    changed_keys.add(key)
        if changed_keys:
            self._usage_version += 1
        return changed_keys

    def _rebuild_fold(self) -> Optional[set]:
        """Full refold of the UMS base totals (priming, resync, new alias)."""
        self._alias_keys = set(self.identity_map.values())
        fold: Dict[str, float] = {}
        key_users: Dict[str, Set[str]] = {}
        for user, base in self.ums.usage_totals_base().items():
            key = self.identity_map.get(user, user)
            fold[key] = fold.get(key, 0.0) + base
            if key in self._alias_keys:
                key_users.setdefault(key, set()).add(user)
        if fold != self._fold:
            self._usage_version += 1
        self._fold = fold
        self._key_users = key_users
        self._fold_invalid = False
        return None

    def _capture_horizons(self) -> None:
        """Inherit the UMS's refresh-time horizon set and observe each
        origin's age — the continuously exported Fig. 11 distribution.

        On a cached-epoch hit the *values* are unchanged but the horizons
        still advance (idle origins keep heartbeating), so the capture
        runs on both refresh paths.  Stub UMSes without horizon support
        (benchmark isolation harnesses) leave the set empty.
        """
        getter = getattr(self.ums, "usage_horizons", None)
        if getter is None:
            return
        horizons = getter()
        self._horizons = horizons
        if self.registry.enabled and horizons:
            now = self.engine.now
            for origin, h in horizons.items():
                child = self._staleness_children.get(origin)
                if child is None:
                    child = self._staleness_family.labels(origin=origin)
                    self._staleness_children[origin] = child
                child.observe(max(0.0, now - h))

    def set_projection(self, projection: Projection) -> None:
        """Switch projection algorithm (run-time configurable, Sec. III-C)."""
        self.projection = projection
        if self._result is not None:
            self._values_vec = projection.project_flat_array(self._result)
            self._values = LeafValueMap(self._result.flat.leaf_paths,
                                        self._result.flat.leaf_slot,
                                        self._values_vec)
            self._notify_listeners()

    # -- serve-plane publication hook ---------------------------------------

    def _notify_listeners(self) -> None:
        traces, self._pending_traces = self._pending_traces, []
        # the end of the causal chain: the refreshed state becomes the
        # served snapshot, still carrying the wire deltas' trace ids
        with trace.span("snapshot.publish", site=self.site) as sp:
            if sp is not None and traces:
                sp["traces"] = traces
            self._metrics["publishes"].inc()
            for listener in self._refresh_listeners:
                listener(self)

    def add_refresh_listener(self, listener: Callable[
            ["FairshareCalculationService"], None],
            fire_now: bool = True) -> None:
        """Register a post-refresh callback (snapshot publication hook).

        Listeners run synchronously at the end of every :meth:`refresh`
        (including cached-epoch hits, whose timestamp still moves) and on
        :meth:`set_projection`.  With ``fire_now`` the listener is also
        invoked immediately so a late subscriber sees the current state.
        """
        self._refresh_listeners.append(listener)
        if fire_now:
            listener(self)

    # -- queries (constant-time, from pre-computed state) ------------------

    @property
    def computed_at(self) -> float:
        return self._computed_at

    def usage_horizons(self) -> Dict[str, float]:
        """Per-origin usage horizons incorporated by the served values.

        For each known origin site, the virtual time up to which that
        site's usage is reflected in the current fairshare state; the gap
        to ``engine.now`` is the live update delay (Fig. 11).
        """
        return dict(self._horizons)

    def register_identity(self, identity: str, leaf: str) -> None:
        """Alias an external grid identity (e.g. an X.509 DN, which cannot
        be a tree node name) to a policy leaf name or path."""
        self.identity_map[identity] = leaf
        # the alias fold is keyed by the map: rebuild it on the next refresh
        self._fold_invalid = True

    def _resolve_path(self, identity: str) -> Optional[str]:
        identity = self.identity_map.get(identity, identity)
        if identity.startswith("/") and self._flat is not None \
                and identity in self._flat.path_index:
            return identity
        return self._by_name.get(identity)

    def lookup(self, identity: str) -> Tuple[float, bool]:
        """Projected value plus whether the identity is actually known.

        The fallback value for unknown identities is indistinguishable from
        a real mid-range value, so callers that need to count negative
        lookups (libaequus cache stats, the serve plane's UNKNOWN_USER
        replies) use this instead of :meth:`fairshare_value`.
        """
        path = self._resolve_path(identity)
        if path is None:
            return self.unknown_user_value, False
        value = self._values.get(path)
        if value is None:
            return self.unknown_user_value, False
        return value, True

    def fairshare_value(self, identity: str) -> float:
        """Projected scalar in [0, 1] for a grid identity (leaf path or name)."""
        return self.lookup(identity)[0]

    def priority(self, identity: str) -> float:
        """The leaf-node fairshare priority (k·abs + (1−k)·rel)."""
        path = self._resolve_path(identity)
        if path is None or self._result is None:
            return self.unknown_user_value
        return self._result.node_priority(path)

    def vector(self, identity: str) -> Optional[FairshareVector]:
        path = self._resolve_path(identity)
        if path is None or self._result is None:
            return None
        if path in self._result.flat.leaf_slot:
            return self._result.vector(path)
        # internal-node paths go through the materialized view (rare)
        return self.tree().vector(path)  # type: ignore[union-attr]

    def values(self) -> Dict[str, float]:
        """All users' projected values (leaf path -> value)."""
        return dict(self._values)

    def values_view(self) -> Mapping[str, float]:
        """Zero-copy read-only view of the current values.

        Refreshes replace the underlying mapping wholesale (never mutate
        it), so a view taken now remains a consistent picture of this
        refresh even after later refreshes land — the basis of snapshot
        atomicity.
        """
        if isinstance(self._values, LeafValueMap):
            return self._values
        return MappingProxyType(self._values)

    def values_array(self) -> Optional[np.ndarray]:
        """Projected values as a float64 array aligned with
        ``flat_result().leaf_paths``.

        Like :meth:`values_view`, refreshes replace the array wholesale —
        a reference taken now stays a consistent picture of this refresh.
        Consumers comparing several sites' values against one shared
        policy (the fairness recorder's cross-site divergence) read this
        instead of walking the per-user dict.
        """
        return self._values_vec

    def names_view(self) -> Mapping[str, str]:
        """Read-only view of the bare-name -> leaf-path index."""
        return MappingProxyType(self._by_name)

    @property
    def snapshot_epoch(self):
        """Policy epoch of the last refresh (None before the first)."""
        return self._refresh_key[0] if self._refresh_key is not None else None

    def tree(self) -> Optional[FairshareTree]:
        """The classic object-tree view of the last refresh (lazy)."""
        if self._result is None:
            return None
        if self._tree_cache is None:
            self._tree_cache = self._result.to_tree()
        return self._tree_cache

    def flat_result(self) -> Optional[FlatFairshare]:
        """The array-backed result of the last refresh."""
        return self._result

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None
        if self._ums_cursor is not None:
            release = getattr(self.ums, "release_totals_cursor", None)
            if release is not None:
                release(self._ums_cursor)
            self._ums_cursor = None
