"""Simulated network connecting Aequus installations.

Messages between sites (USS↔USS usage exchange, PDS policy distribution)
travel through this bus with configurable latency and jitter.  Partitions
can be injected to model sites dropping out of the collaboration — the
substrate for the partial-participation experiment and for failure-injection
tests.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Any, Callable, Dict, Mapping, Optional, Set, Tuple

import numpy as np

from ..obs.registry import MetricsRegistry, metric_property
from ..sim.engine import SimulationEngine
from .transport import UssTransport

__all__ = ["Network", "NetworkStats"]


class NetworkStats:
    """Counters for traffic accounting (the paper's caching argument is all
    about reducing call volume, so tests assert on these).

    ``payload_entries`` / ``payload_bytes`` accumulate each *sent* message's
    self-reported ``wire_entries()`` / ``wire_bytes()`` (see
    :mod:`repro.services.messages` for the cost model); the per-type dicts
    break the same totals down by payload class name.  Accounting is
    sender-side: the sender serializes and transmits whether or not a
    partition black-holes the message downstream, so dropped sends still
    cost wire bytes — during a partition/heal window the per-type series
    therefore show every delta heartbeat and ``UsageResyncRequest`` the
    protocol actually emitted, not just the survivors.  Messages that do
    not implement the protocol (raw test payloads) count as zero.

    The counters live in a :class:`~repro.obs.registry.MetricsRegistry`
    (``aequus_network_*`` series); the historical attributes are views over
    the registry, so existing call sites and a Prometheus scrape see one
    set of numbers.  Each ``Network`` gets its own registry by default —
    pass a shared one (as the aequusd site builder does) to fold the
    series into a site-wide scrape.

    Memory: ``per_link`` and the by-type series are O(distinct links) and
    O(distinct message types) — bounded by topology, not by traffic volume
    or simulation length.  Long-running harnesses that measure phases
    separately take :meth:`snapshot` at each phase boundary and diff, or
    call :meth:`reset` to zero everything.
    """

    _COUNTERS = ("sent", "delivered", "dropped",
                 "payload_entries", "payload_bytes")

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None \
            else MetricsRegistry(constant_labels={"component": "network"})
        messages = self.registry.counter(
            "aequus_network_messages_total",
            "Messages by delivery outcome (sent counts every send attempt)",
            ("event",))
        self._metrics = {
            event: messages.labels(event=event)
            for event in ("sent", "delivered", "dropped")}
        self._metrics["payload_entries"] = self.registry.counter(
            "aequus_network_payload_entries_total",
            "Wire entries across all queued payloads").labels()
        self._metrics["payload_bytes"] = self.registry.counter(
            "aequus_network_payload_bytes_total",
            "Modeled bytes on the wire across all queued payloads").labels()
        self._by_type_messages = self.registry.counter(
            "aequus_network_messages_by_type_total",
            "Queued payloads by message class", ("type",))
        self._by_type_bytes = self.registry.counter(
            "aequus_network_bytes_by_type_total",
            "Modeled wire bytes by message class", ("type",))
        self._link_messages = self.registry.counter(
            "aequus_network_link_messages_total",
            "Send attempts per (src, dst) link", ("src", "dst"))

    sent = metric_property("sent")
    delivered = metric_property("delivered")
    dropped = metric_property("dropped")
    payload_entries = metric_property("payload_entries")
    payload_bytes = metric_property("payload_bytes")

    # -- the dict-shaped breakdowns (rebuilt from labeled series) -----------

    @property
    def messages_by_type(self) -> Dict[str, int]:
        return {key[0]: child.value
                for key, child in self._by_type_messages.items()}

    @property
    def bytes_by_type(self) -> Dict[str, int]:
        return {key[0]: child.value
                for key, child in self._by_type_bytes.items()}

    @property
    def per_link(self) -> Dict[Tuple[str, str], int]:
        return {key: child.value
                for key, child in self._link_messages.items()}

    # -- recording ----------------------------------------------------------

    def record_send(self, src: str, dst: str) -> None:
        """Account one send attempt (delivered or not) on a link."""
        self._metrics["sent"].inc()
        self._link_messages.labels(src=src, dst=dst).inc()

    def record_payload(self, message: Any) -> None:
        """Account a queued message's wire footprint (duck-typed)."""
        entries = getattr(message, "wire_entries", None)
        size = getattr(message, "wire_bytes", None)
        n = int(entries()) if callable(entries) else 0
        b = int(size()) if callable(size) else 0
        name = type(message).__name__
        self._metrics["payload_entries"].inc(n)
        self._metrics["payload_bytes"].inc(b)
        self._by_type_messages.labels(type=name).inc()
        self._by_type_bytes.labels(type=name).inc(b)

    # -- phase measurement ---------------------------------------------------

    def snapshot(self) -> Mapping[str, Any]:
        """Immutable point-in-time copy of every counter.

        The measurement-phase companion to :meth:`reset`: diffing two
        snapshots isolates a phase without zeroing state other readers
        (a live scrape, a concurrent measurement) may rely on.
        """
        return MappingProxyType({
            **{name: self._metrics[name].value for name in self._COUNTERS},
            "messages_by_type": MappingProxyType(self.messages_by_type),
            "bytes_by_type": MappingProxyType(self.bytes_by_type),
            "per_link": MappingProxyType(self.per_link),
        })

    def reset(self) -> None:
        """Zero every counter (phase boundary in measurement harnesses)."""
        for name in self._COUNTERS:
            self._metrics[name].set(0)
        self._by_type_messages.clear()
        self._by_type_bytes.clear()
        self._link_messages.clear()


class Network(UssTransport):
    """Point-to-point message delivery with latency over the sim engine.

    The in-process implementation of the
    :class:`~repro.services.transport.UssTransport` seam: delivery is an
    engine event, so a single virtual clock orders everything and
    :meth:`~repro.services.transport.UssTransport.pump` has nothing to do.
    """

    def __init__(self, engine: SimulationEngine, base_latency: float = 0.05,
                 jitter: float = 0.0, rng: Optional[np.random.Generator] = None,
                 registry: Optional[MetricsRegistry] = None):
        if base_latency < 0 or jitter < 0:
            raise ValueError("latency and jitter must be non-negative")
        self.engine = engine
        self.base_latency = base_latency
        self.jitter = jitter
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._endpoints: Dict[str, Callable[[Any], None]] = {}
        self._partitions: Set[frozenset] = set()
        self.stats = NetworkStats(registry=registry)

    # -- topology ----------------------------------------------------------

    def connect(self, name: str, handler: Callable[[Any], None]) -> None:
        if name in self._endpoints:
            raise ValueError(f"endpoint {name!r} already connected")
        self._endpoints[name] = handler

    def disconnect(self, name: str) -> None:
        self._endpoints.pop(name, None)

    def endpoints(self) -> Set[str]:
        return set(self._endpoints)

    def partition(self, a: str, b: str) -> None:
        """Drop all traffic between ``a`` and ``b`` until healed."""
        self._partitions.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        self._partitions.discard(frozenset((a, b)))

    def is_partitioned(self, a: str, b: str) -> bool:
        return frozenset((a, b)) in self._partitions

    # -- delivery ----------------------------------------------------------

    def latency(self) -> float:
        """One delivery delay: ``base_latency`` ± symmetric jitter, >= 0.

        Jitter is symmetric around the base (real links are early as well
        as late, and reordering under jitter is what the USS stale-drop
        path exists for).  With ``jitter > base_latency`` the raw sample
        can go negative; it is clamped at zero — a negative delay would
        either blow up the engine (``schedule`` rejects it) or, worse,
        deliver into the past and silently reorder against already-queued
        events.
        """
        lat = self.base_latency
        if self.jitter > 0:
            lat += float(self.rng.uniform(-self.jitter, self.jitter))
        return max(0.0, lat)

    def send(self, src: str, dst: str, message: Any) -> bool:
        """Queue ``message`` for delivery; returns False if dropped."""
        self.stats.record_send(src, dst)
        # sender-side accounting: the payload is serialized and put on the
        # wire before the sender can know about partitions or dead peers
        self.stats.record_payload(message)
        if self.is_partitioned(src, dst) or dst not in self._endpoints:
            self.stats.dropped += 1
            return False
        handler = self._endpoints[dst]

        def deliver() -> None:
            # Re-check: a partition raised while the message was in flight
            # loses it, as a real network would.
            if self.is_partitioned(src, dst):
                self.stats.dropped += 1
                return
            self.stats.delivered += 1
            handler(message)

        self.engine.schedule(self.latency(), deliver)
        return True

    def broadcast(self, src: str, message: Any) -> int:
        """Send to every endpoint except the source; returns queue count."""
        count = 0
        for dst in sorted(self._endpoints):
            if dst != src and self.send(src, dst, message):
                count += 1
        return count
