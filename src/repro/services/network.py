"""Simulated network connecting Aequus installations.

Messages between sites (USS↔USS usage exchange, PDS policy distribution)
travel through this bus with configurable latency and jitter.  Partitions
can be injected to model sites dropping out of the collaboration — the
substrate for the partial-participation experiment and for failure-injection
tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Set, Tuple

import numpy as np

from ..sim.engine import SimulationEngine

__all__ = ["Network", "NetworkStats"]


@dataclass
class NetworkStats:
    """Counters for traffic accounting (the paper's caching argument is all
    about reducing call volume, so tests assert on these).

    ``payload_entries`` / ``payload_bytes`` accumulate each queued message's
    self-reported ``wire_entries()`` / ``wire_bytes()`` (see
    :mod:`repro.services.messages` for the cost model); the per-type dicts
    break the same totals down by payload class name.  Messages that do not
    implement the protocol (raw test payloads) count as zero.

    Memory: ``per_link`` and the by-type dicts are O(distinct links) and
    O(distinct message types) — bounded by topology, not by traffic volume
    or simulation length.  Long-running harnesses that measure phases
    separately (e.g. warm-up vs steady state in the exchange benchmark)
    call :meth:`reset` between phases instead of accumulating forever.
    """

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    payload_entries: int = 0
    payload_bytes: int = 0
    messages_by_type: Dict[str, int] = field(default_factory=dict)
    bytes_by_type: Dict[str, int] = field(default_factory=dict)
    per_link: Dict[Tuple[str, str], int] = field(default_factory=dict)

    def record_payload(self, message: Any) -> None:
        """Account a queued message's wire footprint (duck-typed)."""
        entries = getattr(message, "wire_entries", None)
        size = getattr(message, "wire_bytes", None)
        n = int(entries()) if callable(entries) else 0
        b = int(size()) if callable(size) else 0
        name = type(message).__name__
        self.payload_entries += n
        self.payload_bytes += b
        self.messages_by_type[name] = self.messages_by_type.get(name, 0) + 1
        self.bytes_by_type[name] = self.bytes_by_type.get(name, 0) + b

    def reset(self) -> None:
        """Zero every counter (phase boundary in measurement harnesses)."""
        self.sent = self.delivered = self.dropped = 0
        self.payload_entries = self.payload_bytes = 0
        self.messages_by_type.clear()
        self.bytes_by_type.clear()
        self.per_link.clear()


class Network:
    """Point-to-point message delivery with latency over the sim engine."""

    def __init__(self, engine: SimulationEngine, base_latency: float = 0.05,
                 jitter: float = 0.0, rng: Optional[np.random.Generator] = None):
        if base_latency < 0 or jitter < 0:
            raise ValueError("latency and jitter must be non-negative")
        self.engine = engine
        self.base_latency = base_latency
        self.jitter = jitter
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._endpoints: Dict[str, Callable[[Any], None]] = {}
        self._partitions: Set[frozenset] = set()
        self.stats = NetworkStats()

    # -- topology ----------------------------------------------------------

    def connect(self, name: str, handler: Callable[[Any], None]) -> None:
        if name in self._endpoints:
            raise ValueError(f"endpoint {name!r} already connected")
        self._endpoints[name] = handler

    def disconnect(self, name: str) -> None:
        self._endpoints.pop(name, None)

    def endpoints(self) -> Set[str]:
        return set(self._endpoints)

    def partition(self, a: str, b: str) -> None:
        """Drop all traffic between ``a`` and ``b`` until healed."""
        self._partitions.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        self._partitions.discard(frozenset((a, b)))

    def is_partitioned(self, a: str, b: str) -> bool:
        return frozenset((a, b)) in self._partitions

    # -- delivery ----------------------------------------------------------

    def latency(self) -> float:
        lat = self.base_latency
        if self.jitter > 0:
            lat += float(self.rng.uniform(0.0, self.jitter))
        return lat

    def send(self, src: str, dst: str, message: Any) -> bool:
        """Queue ``message`` for delivery; returns False if dropped."""
        self.stats.sent += 1
        link = (src, dst)
        self.stats.per_link[link] = self.stats.per_link.get(link, 0) + 1
        if self.is_partitioned(src, dst) or dst not in self._endpoints:
            self.stats.dropped += 1
            return False
        # the message actually goes on the wire: account its payload
        self.stats.record_payload(message)
        handler = self._endpoints[dst]

        def deliver() -> None:
            # Re-check: a partition raised while the message was in flight
            # loses it, as a real network would.
            if self.is_partitioned(src, dst):
                self.stats.dropped += 1
                return
            self.stats.delivered += 1
            handler(message)

        self.engine.schedule(self.latency(), deliver)
        return True

    def broadcast(self, src: str, message: Any) -> int:
        """Send to every endpoint except the source; returns queue count."""
        count = 0
        for dst in sorted(self._endpoints):
            if dst != src and self.send(src, dst, message):
                count += 1
        return count
