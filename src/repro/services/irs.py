"""Identity Resolution Service (IRS).

Global fairshare needs the *grid identity* of a job's owner, but resource
managers only know the local *system user* the grid identity was mapped to
at submission (paper Section III-B).  The IRS reverts that mapping, two
ways:

1. an explicit lookup table populated by calls that store the reverse
   mapping, or
2. a site-provided *custom mapping resolution endpoint* the IRS calls with
   name-resolution queries "using a minimalist JSON based protocol".

We implement the JSON protocol literally (requests and responses are JSON
strings) so the endpoint seam is a faithful integration surface: HPC2N's
production deployment plugs in exactly here.

Protocol::

    request:  {"query": "resolve", "system_user": "<name>"}
    response: {"grid_identity": "<identity>"}         on success
              {"error": "unknown user"}                otherwise
"""

from __future__ import annotations

import json
from typing import Callable, Dict, Optional

__all__ = ["IdentityResolutionService", "IdentityResolutionError", "table_endpoint"]


class IdentityResolutionError(KeyError):
    """Raised when a system user cannot be resolved to a grid identity."""


class IdentityResolutionService:
    """Reverse mapping from system users to grid identities."""

    def __init__(self, site: str,
                 endpoint: Optional[Callable[[str], str]] = None):
        self.site = site
        self._table: Dict[str, str] = {}
        self._endpoint = endpoint
        self.table_hits = 0
        self.endpoint_calls = 0

    # -- population -------------------------------------------------------

    def store_mapping(self, system_user: str, grid_identity: str) -> None:
        """Actively store a reverse mapping (integration option 1)."""
        self._table[system_user] = grid_identity

    def set_endpoint(self, endpoint: Callable[[str], str]) -> None:
        """Configure the custom JSON resolution endpoint (option 2)."""
        self._endpoint = endpoint

    # -- resolution ----------------------------------------------------------

    def resolve(self, system_user: str) -> str:
        """Resolve a system user to its grid identity.

        The lookup table is consulted first; on a miss the configured
        endpoint is queried via the JSON protocol, and a successful answer
        is memoized into the table.
        """
        identity = self._table.get(system_user)
        if identity is not None:
            self.table_hits += 1
            return identity
        if self._endpoint is None:
            raise IdentityResolutionError(system_user)
        request = json.dumps({"query": "resolve", "system_user": system_user})
        self.endpoint_calls += 1
        raw = self._endpoint(request)
        try:
            response = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise IdentityResolutionError(
                f"endpoint returned invalid JSON for {system_user!r}") from exc
        identity = response.get("grid_identity")
        if not identity:
            raise IdentityResolutionError(system_user)
        self._table[system_user] = identity
        return identity

    def known_users(self) -> Dict[str, str]:
        return dict(self._table)


def table_endpoint(mapping: Dict[str, str]) -> Callable[[str], str]:
    """Build a JSON-protocol endpoint from a plain mapping.

    This is the shape of the "small name resolution endpoint" deployed in
    the HPC2N system (paper Section IV): it answers resolve queries from the
    site's own account database.
    """

    def endpoint(request: str) -> str:
        try:
            payload = json.loads(request)
        except json.JSONDecodeError:
            return json.dumps({"error": "malformed request"})
        if not isinstance(payload, dict):
            return json.dumps({"error": "malformed request"})
        if payload.get("query") != "resolve":
            return json.dumps({"error": "unsupported query"})
        user = payload.get("system_user")
        identity = mapping.get(user)
        if identity is None:
            return json.dumps({"error": "unknown user"})
        return json.dumps({"grid_identity": identity})

    return endpoint
