"""A full per-site Aequus installation and grid-wide wiring.

Each site participating in the grid runs its own Aequus stack (paper
Figure 2): USS, UMS, PDS, FCS, and IRS.  Sites communicate *only* by
exchanging usage data through their USS services.

Participation modes (Section IV-A.4):

``FULL``
    Publishes local usage to peers and considers remote usage when
    prioritizing — the normal configuration.
``READ_ONLY``
    Reads global usage data but does not contribute its own ("due to
    misconfiguration, local policies, or legislation").
``LOCAL_ONLY``
    Contributes data but only considers local data for job prioritization.
``DISJUNCT``
    Neither receives nor contributes: "disjunct from any other
    installations", with no impact on their operations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..core.decay import DecayFunction, ExponentialDecay
from ..core.distance import FairshareParameters
from ..core.policy import PolicyTree
from ..core.projection import make_projection
from ..obs.registry import MetricsRegistry
from ..sim.engine import SimulationEngine
from .fcs import FairshareCalculationService
from .irs import IdentityResolutionService
from .network import Network
from .pds import PolicyDistributionService
from .ums import UsageMonitoringService
from .uss import UsageStatisticsService

__all__ = ["ParticipationMode", "SiteConfig", "AequusSite", "connect_sites"]


class ParticipationMode(enum.Enum):
    FULL = "full"
    READ_ONLY = "read_only"
    LOCAL_ONLY = "local_only"
    DISJUNCT = "disjunct"

    @property
    def publishes(self) -> bool:
        return self in (ParticipationMode.FULL, ParticipationMode.LOCAL_ONLY)

    @property
    def consumes_remote(self) -> bool:
        return self in (ParticipationMode.FULL, ParticipationMode.READ_ONLY)


@dataclass
class SiteConfig:
    """Tunable intervals and algorithm parameters for one installation.

    The four update-delay sources of Section IV-A.2 map to:
    (I) the resource manager's reporting delay — ``rms`` layer;
    (II) cache/refresh times in USS, UMS, FCS — ``uss_exchange_interval``,
    ``ums_refresh_interval``, ``fcs_refresh_interval``;
    (III) the libaequus cache — ``libaequus_cache_ttl``;
    (IV) the re-prioritization interval — ``rms`` layer.
    """

    histogram_interval: float = 60.0
    uss_exchange_interval: float = 30.0
    #: delta exchange (sequence-numbered changed-entry publishes with
    #: automatic resync) vs the original full-snapshot-every-tick reference
    uss_delta_exchange: bool = True
    ums_refresh_interval: float = 30.0
    #: dirty-user incremental UMS refresh vs full merge-and-decay reference
    ums_incremental: bool = True
    fcs_refresh_interval: float = 30.0
    pds_refresh_interval: float = 300.0
    libaequus_cache_ttl: float = 15.0
    decay_half_life: float = 7 * 24 * 3600.0
    k: float = 0.5
    resolution: int = 9999
    projection: str = "percental"
    start_offset: float = 0.0

    def decay(self) -> DecayFunction:
        return ExponentialDecay(self.decay_half_life)

    def parameters(self) -> FairshareParameters:
        return FairshareParameters(k=self.k, resolution=self.resolution)


class AequusSite:
    """One site's complete, wired Aequus service stack."""

    def __init__(self, name: str, engine: SimulationEngine, network: Network,
                 policy: PolicyTree,
                 config: Optional[SiteConfig] = None,
                 mode: ParticipationMode = ParticipationMode.FULL,
                 registry: Optional[MetricsRegistry] = None):
        self.name = name
        self.engine = engine
        self.network = network
        self.config = config or SiteConfig()
        self.mode = mode
        #: one registry across USS/UMS/FCS so a single scrape (or the serve
        #: plane's METRICS op) covers the whole stack; sim-time timestamps
        self.registry = registry if registry is not None else MetricsRegistry(
            constant_labels={"site": name}, clock=lambda: engine.now)
        cfg = self.config
        self.uss = UsageStatisticsService(
            name, engine, network,
            histogram_interval=cfg.histogram_interval,
            exchange_interval=cfg.uss_exchange_interval,
            publish=mode.publishes,
            delta_exchange=cfg.uss_delta_exchange,
            start_offset=cfg.start_offset,
            registry=self.registry,
        )
        self.ums = UsageMonitoringService(
            name, engine, sources=[self.uss],
            decay=cfg.decay(),
            refresh_interval=cfg.ums_refresh_interval,
            consider_remote=mode.consumes_remote,
            incremental=cfg.ums_incremental,
            start_offset=cfg.start_offset,
            registry=self.registry,
        )
        self.pds = PolicyDistributionService(
            name, engine, policy=policy,
            refresh_interval=cfg.pds_refresh_interval,
            start_offset=cfg.start_offset,
        )
        self.fcs = FairshareCalculationService(
            name, engine, pds=self.pds, ums=self.ums,
            parameters=cfg.parameters(),
            projection=make_projection(cfg.projection),
            refresh_interval=cfg.fcs_refresh_interval,
            start_offset=cfg.start_offset,
            registry=self.registry,
        )
        self.irs = IdentityResolutionService(name)

    def stop(self) -> None:
        self.uss.stop()
        self.ums.stop()
        self.pds.stop()
        self.fcs.stop()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<AequusSite {self.name} mode={self.mode.value}>"


def connect_sites(sites: Iterable[AequusSite]) -> None:
    """Peer every site's USS with every other site's USS (full mesh).

    A DISJUNCT site is left unpeered entirely; READ_ONLY sites are peered so
    they *receive* exchanges (their USS simply never publishes).
    """
    sites = list(sites)
    for a in sites:
        if a.mode is ParticipationMode.DISJUNCT:
            continue
        for b in sites:
            if a is b or b.mode is ParticipationMode.DISJUNCT:
                continue
            a.uss.add_peer(b.name)
