"""Policy Distribution Service (PDS).

Manages user policies both locally and globally "by mounting sub-policies
from other sources (which may be other PDS services)" (paper Section II-A).
The local administration keeps full control of the tree top (how much of
the cluster a grid VO receives); the mounted subtree's internal subdivision
is managed remotely and refreshed periodically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.policy import PolicyTree, parse_policy
from ..sim.engine import PeriodicTask, SimulationEngine
from .messages import PolicyExportMessage

__all__ = ["PolicyDistributionService", "MountSubscription"]


@dataclass
class MountSubscription:
    mount_point: str
    remote: "PolicyDistributionService"
    weight: Optional[float]


class PolicyDistributionService:
    """Per-site policy management with remote sub-policy mounting."""

    def __init__(self, site: str, engine: SimulationEngine,
                 policy: Optional[PolicyTree] = None,
                 refresh_interval: float = 300.0,
                 start_offset: float = 0.0):
        self.site = site
        self.engine = engine
        self._policy = policy if policy is not None else PolicyTree()
        self._mounts: List[MountSubscription] = []
        self.refresh_interval = refresh_interval
        self.refreshes = 0
        self.version = 0
        self._task: Optional[PeriodicTask] = engine.periodic(
            refresh_interval, self.refresh_mounts, start_offset=start_offset)

    # -- local administration -------------------------------------------------

    def policy(self) -> PolicyTree:
        """The current effective policy tree (local + mounted)."""
        return self._policy

    def policy_epoch(self) -> tuple:
        """Cheap monotone identifier of the effective policy content.

        Combines the PDS version (bumped on set_policy/set_share/mounting)
        with the tree's own revision counter, so consumers also observe
        in-place mutations made directly on :meth:`policy`'s return value.
        """
        return (self.version, self._policy.revision)

    def set_policy(self, policy: PolicyTree) -> None:
        """Replace the local policy (run-time policy change, Section II-A)."""
        self._policy = policy
        self.version += 1
        self.refresh_mounts()

    def set_share(self, path: str, weight: float) -> None:
        self._policy.set_share(path, weight)
        self.version += 1

    # -- distribution -----------------------------------------------------

    def export(self) -> PolicyExportMessage:
        """Serialized policy for remote consumers (sub-policy publishing)."""
        return PolicyExportMessage(
            source=self.site,
            sent_at=self.engine.now,
            lines=self._policy.to_lines(),
        )

    def mount_remote(self, mount_point: str,
                     remote: "PolicyDistributionService",
                     weight: Optional[float] = None) -> None:
        """Mount ``remote``'s policy under ``mount_point`` and keep it fresh."""
        subtree = parse_policy(remote.export().text())
        self._policy.mount(mount_point, subtree, source=remote.site, weight=weight)
        self._mounts.append(MountSubscription(mount_point, remote, weight))
        self.version += 1

    def refresh_mounts(self) -> None:
        """Re-fetch every mounted sub-policy (periodic task).

        ``refresh_mount`` detects identical subtrees and leaves the tree
        (and its revision) untouched; the PDS version only bumps when a
        mount actually changed, so steady-state mount refreshes no longer
        force every downstream FCS into a policy-epoch miss.
        """
        self.refreshes += 1
        changed = False
        for sub in self._mounts:
            subtree = parse_policy(sub.remote.export().text())
            if self._policy.refresh_mount(sub.mount_point, subtree):
                changed = True
        if changed:
            self.version += 1

    def mounts(self) -> List[str]:
        return [m.mount_point for m in self._mounts]

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None
