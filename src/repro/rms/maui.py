"""Maui-like resource manager integrated via source patches.

"Maui has no inherent plug-in system, and therefore the integration is done
by applying patches to the Maui source code.  Similarly to SLURM, the local
calculation of the fairshare priority factor is replaced with a call to the
libaequus system library, and another call for supplying usage information
to Aequus is injected into Maui for execution when jobs are completed"
(paper Section III-A).

We model the patch points as two overridable call-out attributes —
``fairshare_callout`` and ``completion_callout`` — which default to Maui's
own local fairshare bookkeeping.  :meth:`apply_aequus_patch` rebinds both,
exactly the surface area of the paper's patches.

Maui's priority style differs from SLURM's: the combination includes an
*expansion-factor* (XFactor) component, ``(wait + runtime) / runtime``,
alongside fairshare and queue-time components, each with its own weight.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Mapping, Optional

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # used only in annotations; avoids an rms<->client cycle
    from ..client.libaequus import LibAequus
from ..sim.engine import SimulationEngine
from .cluster import Cluster
from .job import Job
from .scheduler import BaseScheduler

__all__ = ["MauiScheduler", "MauiWeights"]


class MauiWeights:
    """Maui component weights (FSWEIGHT / XFWEIGHT / QUEUETIMEWEIGHT)."""

    def __init__(self, fairshare: float = 1.0, xfactor: float = 0.0,
                 queuetime: float = 0.0):
        for name, w in [("fairshare", fairshare), ("xfactor", xfactor),
                        ("queuetime", queuetime)]:
            if w < 0:
                raise ValueError(f"{name} weight must be non-negative")
        if fairshare + xfactor + queuetime == 0:
            raise ValueError("at least one weight must be positive")
        self.fairshare = fairshare
        self.xfactor = xfactor
        self.queuetime = queuetime

    @property
    def total(self) -> float:
        return self.fairshare + self.xfactor + self.queuetime


class MauiScheduler(BaseScheduler):
    """Scheduler with Maui-style priority and patch-based Aequus call-outs."""

    def __init__(self, name: str, engine: SimulationEngine, cluster: Cluster,
                 weights: Optional[MauiWeights] = None,
                 shares: Optional[Mapping[str, float]] = None,
                 fairshare_half_life: float = 7 * 24 * 3600.0,
                 max_queue_time: float = 3600.0,
                 max_xfactor: float = 100.0,
                 sched_interval: float = 5.0,
                 reprioritize_interval: float = 30.0,
                 backfill: bool = True,
                 start_offset: float = 0.0):
        super().__init__(name, engine, cluster,
                         sched_interval=sched_interval,
                         reprioritize_interval=reprioritize_interval,
                         backfill=backfill,
                         start_offset=start_offset)
        self.weights = weights or MauiWeights(fairshare=1.0)
        self.max_queue_time = max_queue_time
        self.max_xfactor = max_xfactor
        # -- Maui's built-in local fairshare state --------------------------
        total = sum(shares.values()) if shares else 0.0
        self._shares: Dict[str, float] = (
            {u: s / total for u, s in shares.items()} if shares and total > 0 else {})
        self._half_life = fairshare_half_life
        self._usage: Dict[str, float] = {}
        self._decayed_at: Dict[str, float] = {}
        # -- the two patch points -----------------------------------------
        self.fairshare_callout: Callable[[Job, float], float] = self._local_fairshare
        self.completion_callout: Callable[[Job, float], None] = self._local_completion

    # -- the patch -----------------------------------------------------------

    def apply_aequus_patch(self, lib: "LibAequus") -> None:
        """Rebind both call-outs to libaequus — the paper's source patch."""
        self.fairshare_callout = (
            lambda job, now: min(max(lib.get_fairshare(job.system_user), 0.0), 1.0))

        def report(job: Job, now: float) -> None:
            if job.start_time is not None and job.end_time is not None:
                lib.report_usage(job.system_user, job.start_time, job.end_time,
                                 job.cores)

        self.completion_callout = report

    # -- Maui's stock local fairshare ---------------------------------------

    def _decayed_usage(self, user: str, now: float) -> float:
        usage = self._usage.get(user, 0.0)
        if usage == 0.0:
            return 0.0
        age = now - self._decayed_at.get(user, now)
        return usage * math.pow(2.0, -age / self._half_life)

    def _local_fairshare(self, job: Job, now: float) -> float:
        target = self._shares.get(job.system_user, 0.0)
        if target <= 0.0:
            return 0.0
        usage = {u: self._decayed_usage(u, now) for u in self._usage}
        total = sum(usage.values())
        if total <= 0.0:
            return 1.0
        return math.pow(2.0, -(usage.get(job.system_user, 0.0) / total) / target)

    def _local_completion(self, job: Job, now: float) -> None:
        user = job.system_user
        self._usage[user] = self._decayed_usage(user, now) + job.charge
        self._decayed_at[user] = now

    # -- priority ------------------------------------------------------------

    def xfactor(self, job: Job, now: float) -> float:
        runtime = max(job.duration, 1.0)
        xf = (job.wait_time(now) + runtime) / runtime
        return min(xf, self.max_xfactor) / self.max_xfactor

    def queuetime_factor(self, job: Job, now: float) -> float:
        return min(1.0, job.wait_time(now) / self.max_queue_time)

    def compute_priority(self, job: Job, now: float) -> float:
        w = self.weights
        fairshare = self.fairshare_callout(job, now)
        total = (w.fairshare * fairshare
                 + w.xfactor * self.xfactor(job, now)
                 + w.queuetime * self.queuetime_factor(job, now))
        return total / w.total

    def on_job_completed(self, job: Job, now: float) -> None:
        self.completion_callout(job, now)
