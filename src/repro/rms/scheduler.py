"""Common scheduling machinery shared by the SLURM-like and Maui-like RMs.

The scheduling loop itself is not the paper's contribution; what matters is
where Aequus plugs in.  Still, a credible loop is needed for the evaluation
to be meaningful, so the base scheduler provides:

* a pending queue ordered by (priority desc, submit time, job id),
* periodic scheduling passes and a periodic *re-prioritization* pass
  (delay source IV in Section IV-A.2),
* EASY backfill: the highest-priority blocked job gets a shadow
  reservation; lower-priority jobs may jump ahead only if they do not
  delay it (scan depth bounded, like SLURM's ``bf_max_job_test``),
* completion events that release resources and drive the job-completion
  plugins (the usage-reporting seam).

Performance notes (the evaluation runs 43,200-job traces): the sorted queue
is cached and only rebuilt after re-prioritization; submissions bisect into
the cached order; started jobs are removed lazily.  A scheduling pass on a
full cluster is O(1).
"""

from __future__ import annotations

from bisect import insort
from typing import Callable, Dict, List, Optional, Tuple

from ..sim.engine import PeriodicTask, SimulationEngine
from .cluster import Cluster
from .job import Job, JobState

__all__ = ["BaseScheduler"]


def _queue_key(job: Job) -> Tuple[float, float, int]:
    return (-job.priority, job.submit_time, job.job_id)


class BaseScheduler:
    """Priority scheduler over a cluster, on the simulation engine."""

    def __init__(self, name: str, engine: SimulationEngine, cluster: Cluster,
                 sched_interval: float = 5.0,
                 reprioritize_interval: float = 30.0,
                 backfill: bool = True,
                 backfill_depth: int = 100,
                 start_offset: float = 0.0):
        if sched_interval <= 0 or reprioritize_interval <= 0:
            raise ValueError("intervals must be positive")
        self.name = name
        self.engine = engine
        self.cluster = cluster
        self.backfill = backfill
        self.backfill_depth = backfill_depth
        self._pending: Dict[int, Job] = {}
        self._queue: Optional[List[Tuple[Tuple[float, float, int], Job]]] = None
        self._head = 0  # consumed prefix of _queue (lazy compaction)
        self._running: Dict[int, Job] = {}
        self.completed: List[Job] = []
        self.jobs_submitted = 0
        self.jobs_started = 0
        self.jobs_completed = 0
        self.reprioritize_interval = reprioritize_interval
        self._sched_task: Optional[PeriodicTask] = engine.periodic(
            sched_interval, self.schedule_pass, start_offset=start_offset)
        self._prio_task: Optional[PeriodicTask] = engine.periodic(
            reprioritize_interval, self.reprioritize, start_offset=start_offset)
        self._completion_hooks: List[Callable[[Job, float], None]] = []

    # -- integration seam: subclasses decide how priority is computed -------

    def compute_priority(self, job: Job, now: float) -> float:
        raise NotImplementedError

    def on_job_completed(self, job: Job, now: float) -> None:
        """Subclass hook: drive completion plugins / call-outs."""

    def add_completion_hook(self, hook: Callable[[Job, float], None]) -> None:
        """External observers (metrics, grid bookkeeping)."""
        self._completion_hooks.append(hook)

    # -- submission -----------------------------------------------------------

    @property
    def pending(self) -> List[Job]:
        return list(self._pending.values())

    @property
    def running(self) -> List[Job]:
        return list(self._running.values())

    def submit(self, job: Job) -> None:
        if job.state is not JobState.PENDING:
            raise ValueError(f"cannot submit job in state {job.state}")
        if job.cores > self.cluster.total_cores:
            raise ValueError(
                f"job {job.job_id} needs {job.cores} cores; cluster has "
                f"{self.cluster.total_cores}")
        if job.submit_time is None:
            job.submit_time = self.engine.now
        job.priority = self.compute_priority(job, self.engine.now)
        self._pending[job.job_id] = job
        if self._queue is not None:
            # only the live region [head:] is ordered; the consumed prefix
            # is garbage awaiting compaction
            insort(self._queue, (_queue_key(job), job), lo=self._head)
        self.jobs_submitted += 1

    def cancel(self, job: Job) -> None:
        if job.job_id in self._pending:
            del self._pending[job.job_id]
            job.mark_cancelled()  # lazy removal purges it from the queue

    # -- the periodic passes ----------------------------------------------

    def reprioritize(self) -> None:
        now = self.engine.now
        for job in self._pending.values():
            job.priority = self.compute_priority(job, now)
        self._queue = None  # order changed wholesale: rebuild lazily

    def _ensure_queue(self) -> List[Tuple[Tuple[float, float, int], Job]]:
        if self._queue is None:
            self._queue = sorted(
                ((_queue_key(j), j) for j in self._pending.values()),
                key=lambda kv: kv[0])
            self._head = 0
        return self._queue

    def _queue_order(self) -> List[Job]:
        """Current queue, best-priority first (stale entries skipped)."""
        return [job for _, job in self._ensure_queue()[self._head:]
                if job.job_id in self._pending]

    def schedule_pass(self) -> None:
        """Start as many jobs as priorities and resources allow.

        The sorted queue is consumed from a head pointer; started or
        cancelled entries behind it are skipped lazily and compacted in
        bulk, so a pass on a full cluster or with an untouched backlog is
        O(1) instead of O(queue).
        """
        if not self._pending or self.cluster.free_cores == 0:
            return
        now = self.engine.now
        queue = self._ensure_queue()
        shadow: Optional[Tuple[float, int]] = None  # (shadow time, spare cores)
        scanned_blocked = 0
        i = self._head
        while i < len(queue):
            job = queue[i][1]
            if job.job_id not in self._pending:
                # lazily dropped (started earlier / cancelled)
                if i == self._head:
                    self._head += 1
                i += 1
                continue
            if self.cluster.free_cores == 0 and shadow is None:
                break
            if self.cluster.fits(job.cores):
                if shadow is not None:
                    shadow_time, spare = shadow
                    # EASY: don't delay the reserved job — backfill only if
                    # we finish before its shadow time or leave it enough
                    # spare cores.
                    if not (now + job.duration <= shadow_time or job.cores <= spare):
                        i += 1
                        continue
                    if job.cores <= spare:
                        shadow = (shadow_time, spare - job.cores)
                self._start(job, now)
                if i == self._head:
                    self._head += 1
                i += 1
            else:
                if shadow is None:
                    if not self.backfill:
                        break
                    shadow = self._shadow_for(job, now)
                    i += 1
                else:
                    scanned_blocked += 1
                    if scanned_blocked >= self.backfill_depth:
                        break
                    i += 1
        if self._head > 64 and self._head * 2 > len(queue):
            del queue[:self._head]
            self._head = 0

    def _shadow_for(self, job: Job, now: float) -> Tuple[float, int]:
        """Earliest time ``job`` could start, and the cores spare then."""
        free = self.cluster.free_cores
        releases = sorted((j.end_time, j.cores) for j in self._running.values()
                          if j.end_time is not None)
        shadow_time = now
        for end, cores in releases:
            if free >= job.cores:
                break
            free += cores
            shadow_time = end
        return shadow_time, max(0, free - job.cores)

    # -- start / completion ----------------------------------------------

    def _start(self, job: Job, now: float) -> None:
        self.cluster.allocate(job, now)
        job.mark_started(now)
        del self._pending[job.job_id]
        self._running[job.job_id] = job
        self.jobs_started += 1
        self.engine.schedule_at(job.end_time, lambda: self._complete(job))

    def _complete(self, job: Job) -> None:
        now = self.engine.now
        self.cluster.release(job, now)
        job.mark_completed(now)
        del self._running[job.job_id]
        self.completed.append(job)
        self.jobs_completed += 1
        self.on_job_completed(job, now)
        for hook in self._completion_hooks:
            hook(job, now)
        # a slot opened: try to start something immediately
        self.schedule_pass()

    # -- introspection -----------------------------------------------------

    @property
    def queue_length(self) -> int:
        return len(self._pending)

    def utilization(self, now: Optional[float] = None) -> float:
        return self.cluster.utilization(now if now is not None else self.engine.now)

    def stop(self) -> None:
        if self._sched_task is not None:
            self._sched_task.cancel()
            self._sched_task = None
        if self._prio_task is not None:
            self._prio_task.cancel()
            self._prio_task = None
