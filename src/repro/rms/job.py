"""Job model and lifecycle for the local resource-manager substrate.

The paper's evaluation trace "is comprised exclusively of bag-of-task jobs
using a single processor per job" (Section IV-3); the model nevertheless
carries a core count so multi-core behaviour (and backfill) can be tested.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Job", "JobState", "next_job_id"]

_job_counter = itertools.count(1)


def next_job_id() -> int:
    return next(_job_counter)


class JobState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.COMPLETED, JobState.CANCELLED)


@dataclass(eq=False)  # identity semantics: two jobs are never "equal"
class Job:
    """A job as seen by the local resource manager.

    ``system_user`` is the *local* account the grid identity was mapped to
    at submission; the grid identity is recovered by the IRS when fairshare
    needs it.  ``duration`` is the actual runtime (the test bed replaces
    computation with idle waits of known length).  ``qos`` feeds the QoS
    priority factor when multifactor scheduling is configured.
    """

    system_user: str
    duration: float
    cores: int = 1
    submit_time: Optional[float] = None
    qos: float = 0.0
    job_id: int = field(default_factory=next_job_id)
    state: JobState = JobState.PENDING
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    priority: float = 0.0

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError("duration must be non-negative")
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if not 0.0 <= self.qos <= 1.0:
            raise ValueError("qos must lie in [0, 1]")

    @property
    def charge(self) -> float:
        """Core-seconds consumed (defined once completed or running)."""
        if self.start_time is None or self.end_time is None:
            return 0.0
        return (self.end_time - self.start_time) * self.cores

    def wait_time(self, now: float) -> float:
        if self.submit_time is None:
            return 0.0
        end = self.start_time if self.start_time is not None else now
        return max(0.0, end - self.submit_time)

    def mark_started(self, now: float) -> None:
        if self.state is not JobState.PENDING:
            raise ValueError(f"cannot start job in state {self.state}")
        self.state = JobState.RUNNING
        self.start_time = now
        self.end_time = now + self.duration

    def mark_completed(self, now: float) -> None:
        if self.state is not JobState.RUNNING:
            raise ValueError(f"cannot complete job in state {self.state}")
        self.state = JobState.COMPLETED
        self.end_time = now

    def mark_cancelled(self) -> None:
        if self.state.terminal:
            raise ValueError(f"job already terminal: {self.state}")
        self.state = JobState.CANCELLED
