"""Multifactor job priority (paper Section III-C).

"Both SLURM and Maui employ a linear combination of several factors to
prioritize jobs, of which fairshare may be one among several.  Each factor
is represented by a value in the [0,1] range, and configurable weights are
applied."  This module implements that combination; the fairshare factor is
supplied by a priority plugin (local calculation or the Aequus call-out).

The paper's complementary observation — "other factors have a smoothing
effect (with impact relative to their weight) on the fluctuating behavior
natural to fairshare" — is reproduced by the factor-ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .job import Job

__all__ = ["FactorWeights", "MultifactorPriority"]


@dataclass(frozen=True)
class FactorWeights:
    """Weights of the linear combination; any factor may be zero.

    The evaluation uses fairshare only ("Fairshare is the only scheduling
    factor used during these tests"), i.e. ``FactorWeights(fairshare=1.0)``.
    """

    fairshare: float = 1.0
    age: float = 0.0
    job_size: float = 0.0
    qos: float = 0.0

    def __post_init__(self) -> None:
        for name, w in self.as_dict().items():
            if w < 0:
                raise ValueError(f"weight {name} must be non-negative, got {w}")
        if self.total == 0:
            raise ValueError("at least one factor weight must be positive")

    @property
    def total(self) -> float:
        return self.fairshare + self.age + self.job_size + self.qos

    def as_dict(self) -> Dict[str, float]:
        return {"fairshare": self.fairshare, "age": self.age,
                "job_size": self.job_size, "qos": self.qos}


class MultifactorPriority:
    """Weighted linear combination of normalized job factors.

    ``max_age`` saturates the age factor: a job waiting that long (or
    longer) gets the full age factor of 1.0.  The job-size factor favors
    small jobs (``1 - cores/total_cores``) — with single-core traces it is
    constant and harmless.
    """

    def __init__(self, weights: Optional[FactorWeights] = None,
                 max_age: float = 3600.0, total_cores: int = 1,
                 normalize: bool = True):
        if max_age <= 0:
            raise ValueError("max_age must be positive")
        if total_cores < 1:
            raise ValueError("total_cores must be >= 1")
        self.weights = weights or FactorWeights()
        self.max_age = max_age
        self.total_cores = total_cores
        self.normalize = normalize

    # -- individual factors ----------------------------------------------

    def age_factor(self, job: Job, now: float) -> float:
        return min(1.0, job.wait_time(now) / self.max_age)

    def job_size_factor(self, job: Job) -> float:
        return max(0.0, 1.0 - (job.cores - 1) / max(1, self.total_cores))

    def qos_factor(self, job: Job) -> float:
        return job.qos

    # -- combination ---------------------------------------------------------

    def compute(self, job: Job, fairshare_value: float, now: float) -> float:
        """The combined priority; in [0, 1] when ``normalize`` is set."""
        if not 0.0 <= fairshare_value <= 1.0:
            raise ValueError(f"fairshare factor outside [0,1]: {fairshare_value}")
        w = self.weights
        total = (w.fairshare * fairshare_value
                 + w.age * self.age_factor(job, now)
                 + w.job_size * self.job_size_factor(job)
                 + w.qos * self.qos_factor(job))
        if self.normalize:
            total /= w.total
        return total
