"""Cluster resources: nodes, cores, allocation, and utilization accounting.

The test bed models each national computing center as "a miniature local
cluster ... using virtual resources as computational nodes" (Section IV).
Allocation is first-fit across nodes; a multi-core job may span nodes
(bag-of-task semantics — each core is an independent task slot).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .job import Job

__all__ = ["Cluster", "AllocationError"]


class AllocationError(RuntimeError):
    """Raised when an allocation request cannot be satisfied."""


class Cluster:
    """A pool of nodes with per-node core counts and busy-time integration."""

    def __init__(self, name: str, n_nodes: int, cores_per_node: int = 1):
        if n_nodes < 1 or cores_per_node < 1:
            raise ValueError("need at least one node and one core per node")
        self.name = name
        self.n_nodes = n_nodes
        self.cores_per_node = cores_per_node
        self._free: List[int] = [cores_per_node] * n_nodes
        self._allocations: Dict[int, List[Tuple[int, int]]] = {}
        # busy-time integral for utilization reporting
        self._busy_cores = 0
        self._busy_integral = 0.0
        self._last_change = 0.0

    # -- capacity ----------------------------------------------------------

    @property
    def total_cores(self) -> int:
        return self.n_nodes * self.cores_per_node

    @property
    def free_cores(self) -> int:
        return sum(self._free)

    @property
    def busy_cores(self) -> int:
        return self.total_cores - self.free_cores

    def fits(self, cores: int) -> bool:
        return cores <= self.free_cores

    # -- allocation -------------------------------------------------------

    def allocate(self, job: Job, now: float) -> None:
        """First-fit allocation of ``job.cores`` cores across nodes."""
        if job.job_id in self._allocations:
            raise AllocationError(f"job {job.job_id} already allocated")
        if not self.fits(job.cores):
            raise AllocationError(
                f"job {job.job_id} needs {job.cores} cores, {self.free_cores} free")
        self._account(now)
        remaining = job.cores
        placement: List[Tuple[int, int]] = []
        for node in range(self.n_nodes):
            if remaining == 0:
                break
            take = min(self._free[node], remaining)
            if take > 0:
                self._free[node] -= take
                placement.append((node, take))
                remaining -= take
        self._allocations[job.job_id] = placement
        self._busy_cores += job.cores

    def release(self, job: Job, now: float) -> None:
        placement = self._allocations.pop(job.job_id, None)
        if placement is None:
            raise AllocationError(f"job {job.job_id} not allocated here")
        self._account(now)
        for node, take in placement:
            self._free[node] += take
        self._busy_cores -= job.cores

    def placement(self, job: Job) -> Optional[List[Tuple[int, int]]]:
        return self._allocations.get(job.job_id)

    # -- utilization --------------------------------------------------------

    def _account(self, now: float) -> None:
        if now < self._last_change:
            raise ValueError("time went backwards in cluster accounting")
        self._busy_integral += self._busy_cores * (now - self._last_change)
        self._last_change = now

    def busy_core_seconds(self, now: float) -> float:
        """Integral of busy cores over time up to ``now``."""
        return self._busy_integral + self._busy_cores * (now - self._last_change)

    def utilization(self, now: float) -> float:
        """Average utilization in [0, 1] since time zero."""
        if now <= 0:
            return 0.0
        return self.busy_core_seconds(now) / (self.total_cores * now)
