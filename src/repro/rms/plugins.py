"""Scheduler plugin seams and the Aequus integrations (paper Section III-A).

SLURM integration happens through its plug-in system: "The priority plug-in
is based on the existing multifactor priority plugin, with the normal
fairshare priority calculation code replaced with a call to libaequus.  A
job completion plug-in supplies usage information to Aequus by calling
libaequus."  These two seams are modeled as:

``PriorityPlugin``
    Supplies the fairshare *factor* (a value in [0, 1]) for a job.
``JobCompletionPlugin``
    Invoked when a job finishes.

Besides the Aequus plugins, a classic *local* fairshare plugin is provided
(usage and policy strictly per-cluster, SLURM-style ``2^(-usage/share)``
with half-life decay) — both as the pre-Aequus baseline the paper replaces
and as the prioritization of a LOCAL_ONLY site in the partial-participation
test.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # used only in annotations; avoids an rms<->client cycle
    from ..client.libaequus import LibAequus
from .job import Job

__all__ = [
    "PriorityPlugin",
    "JobCompletionPlugin",
    "AequusPriorityPlugin",
    "AequusJobCompletionPlugin",
    "LocalFairsharePlugin",
    "FixedFairsharePlugin",
]


class PriorityPlugin:
    """Supplies the fairshare factor of the multifactor priority."""

    name = "abstract"

    def fairshare_factor(self, job: Job, now: float) -> float:
        raise NotImplementedError


class JobCompletionPlugin:
    """Invoked by the scheduler when a job completes."""

    name = "abstract"

    def job_completed(self, job: Job, now: float) -> None:
        raise NotImplementedError


class AequusPriorityPlugin(PriorityPlugin):
    """The Aequus call-out replacing local fairshare calculation."""

    name = "aequus-priority"

    def __init__(self, lib: "LibAequus"):
        self.lib = lib

    def fairshare_factor(self, job: Job, now: float) -> float:
        value = self.lib.get_fairshare(job.system_user)
        return min(max(value, 0.0), 1.0)


class AequusJobCompletionPlugin(JobCompletionPlugin):
    """Supplies usage information to Aequus on job completion."""

    name = "aequus-jobcomp"

    def __init__(self, lib: "LibAequus"):
        self.lib = lib

    def job_completed(self, job: Job, now: float) -> None:
        if job.start_time is None or job.end_time is None:
            return
        self.lib.report_usage(job.system_user, job.start_time, job.end_time,
                              job.cores)


class LocalFairsharePlugin(PriorityPlugin, JobCompletionPlugin):
    """Classic per-cluster fairshare: decayed local usage vs local shares.

    Implements the traditional SLURM multifactor formula
    ``F = 2^(-usage_share / target_share)`` over a decaying per-user usage
    accumulator with the given half-life.  It is simultaneously a completion
    plugin (it must see finished jobs to account usage).
    """

    name = "local-fairshare"

    def __init__(self, shares: Mapping[str, float], half_life: float = 7 * 24 * 3600.0):
        if half_life <= 0:
            raise ValueError("half_life must be positive")
        total = sum(shares.values())
        if total <= 0:
            raise ValueError("shares must sum to a positive value")
        self.shares: Dict[str, float] = {u: s / total for u, s in shares.items()}
        self.half_life = half_life
        self._usage: Dict[str, float] = {}
        self._decayed_at: Dict[str, float] = {}

    def _decayed_usage(self, user: str, now: float) -> float:
        usage = self._usage.get(user, 0.0)
        if usage == 0.0:
            return 0.0
        age = now - self._decayed_at.get(user, now)
        return usage * math.pow(2.0, -age / self.half_life)

    def job_completed(self, job: Job, now: float) -> None:
        user = job.system_user
        self._usage[user] = self._decayed_usage(user, now) + job.charge
        self._decayed_at[user] = now

    def fairshare_factor(self, job: Job, now: float) -> float:
        user = job.system_user
        target = self.shares.get(user, 0.0)
        if target <= 0.0:
            return 0.0
        usage = {u: self._decayed_usage(u, now) for u in self._usage}
        total = sum(usage.values())
        if total <= 0.0:
            return 1.0
        usage_share = usage.get(user, 0.0) / total
        return math.pow(2.0, -usage_share / target)

    def usage_snapshot(self, now: float) -> Dict[str, float]:
        return {u: self._decayed_usage(u, now) for u in self._usage}


class FixedFairsharePlugin(PriorityPlugin):
    """Constant per-user factors (testing and scheduling ablations)."""

    name = "fixed-fairshare"

    def __init__(self, values: Mapping[str, float], default: float = 0.5):
        for user, value in values.items():
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"factor for {user!r} outside [0,1]: {value}")
        if not 0.0 <= default <= 1.0:
            raise ValueError("default outside [0,1]")
        self.values = dict(values)
        self.default = default

    def fairshare_factor(self, job: Job, now: float) -> float:
        return self.values.get(job.system_user, self.default)
