"""Local resource-manager substrate: jobs, clusters, multifactor priority,
plugin seams, and the SLURM-like / Maui-like schedulers Aequus integrates
with (paper Section III)."""

from .cluster import AllocationError, Cluster
from .job import Job, JobState
from .maui import MauiScheduler, MauiWeights
from .plugins import (
    AequusJobCompletionPlugin,
    AequusPriorityPlugin,
    FixedFairsharePlugin,
    JobCompletionPlugin,
    LocalFairsharePlugin,
    PriorityPlugin,
)
from .priority import FactorWeights, MultifactorPriority
from .scheduler import BaseScheduler
from .slurm import SlurmScheduler

__all__ = [
    "AllocationError", "Cluster",
    "Job", "JobState",
    "MauiScheduler", "MauiWeights",
    "AequusJobCompletionPlugin", "AequusPriorityPlugin", "FixedFairsharePlugin",
    "JobCompletionPlugin", "LocalFairsharePlugin", "PriorityPlugin",
    "FactorWeights", "MultifactorPriority",
    "BaseScheduler",
    "SlurmScheduler",
]
