"""SLURM-like resource manager with a plug-in system (paper Section III-A).

SLURM integration is done "by implementing custom Aequus priority and job
completion plugins for use in the SLURM plug-in system.  The priority
plug-in is based on the existing multifactor priority plugin, with the
normal fairshare priority calculation code replaced with a call to
libaequus."  Accordingly, this scheduler:

* computes job priority with the multifactor combination
  (:class:`repro.rms.priority.MultifactorPriority`), taking the fairshare
  factor from whatever :class:`PriorityPlugin` is registered — the stock
  local one, or the Aequus call-out;
* invokes every registered :class:`JobCompletionPlugin` when a job
  finishes.

Swapping local fairshare for Aequus is literally a plugin registration —
the "minimal intrusion" integration claim.
"""

from __future__ import annotations

from typing import List, Optional

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # used only in annotations; avoids an rms<->client cycle
    from ..client.libaequus import LibAequus
from ..sim.engine import SimulationEngine
from .cluster import Cluster
from .job import Job
from .plugins import (
    AequusJobCompletionPlugin,
    AequusPriorityPlugin,
    JobCompletionPlugin,
    PriorityPlugin,
)
from .priority import FactorWeights, MultifactorPriority
from .scheduler import BaseScheduler

__all__ = ["SlurmScheduler"]


class SlurmScheduler(BaseScheduler):
    """Plugin-driven scheduler mirroring SLURM's integration surface."""

    def __init__(self, name: str, engine: SimulationEngine, cluster: Cluster,
                 weights: Optional[FactorWeights] = None,
                 sched_interval: float = 5.0,
                 reprioritize_interval: float = 30.0,
                 backfill: bool = True,
                 max_age: float = 3600.0,
                 start_offset: float = 0.0):
        super().__init__(name, engine, cluster,
                         sched_interval=sched_interval,
                         reprioritize_interval=reprioritize_interval,
                         backfill=backfill,
                         start_offset=start_offset)
        self.multifactor = MultifactorPriority(
            weights=weights or FactorWeights(fairshare=1.0),
            max_age=max_age,
            total_cores=cluster.total_cores)
        self.priority_plugin: Optional[PriorityPlugin] = None
        self.completion_plugins: List[JobCompletionPlugin] = []

    # -- plugin registry ------------------------------------------------------

    def register_priority_plugin(self, plugin: PriorityPlugin) -> None:
        """Install (or replace) the fairshare priority plugin."""
        self.priority_plugin = plugin

    def register_completion_plugin(self, plugin: JobCompletionPlugin) -> None:
        self.completion_plugins.append(plugin)

    def integrate_aequus(self, lib: "LibAequus") -> None:
        """The full SLURM integration in one call: both Aequus plugins."""
        self.register_priority_plugin(AequusPriorityPlugin(lib))
        self.register_completion_plugin(AequusJobCompletionPlugin(lib))

    # -- BaseScheduler hooks -------------------------------------------------

    def compute_priority(self, job: Job, now: float) -> float:
        if self.priority_plugin is not None:
            fairshare = self.priority_plugin.fairshare_factor(job, now)
        else:
            fairshare = 0.5  # no plugin: neutral factor
        return self.multifactor.compute(job, fairshare, now)

    def on_job_completed(self, job: Job, now: float) -> None:
        for plugin in self.completion_plugins:
            plugin.job_completed(job, now)
