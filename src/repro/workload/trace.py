"""Workload trace containers and I/O.

A trace is the unit the whole modeling pipeline consumes: the 2012 annual
usage statistics of the Swedish national grid arrive as a job trace, get
cleaned, categorized by user, and modeled; synthetic traces generated from
the model are fed to the test bed.  Single-core bag-of-task jobs are the
norm (paper Section IV-3), but the container carries core counts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

__all__ = ["TraceJob", "Trace"]

_trace_ids = itertools.count(1)


@dataclass(frozen=True)
class TraceJob:
    """One job of a workload trace.

    ``user`` is a grid identity (or user-category label once a trace has
    been relabeled for modeling).  ``admin`` flags jobs "submitted and
    managed by system administrators or automated monitoring systems",
    which Feitelson's methodology — and the paper — exclude before
    modeling.
    """

    user: str
    submit: float
    duration: float
    cores: int = 1
    admin: bool = False
    job_id: int = field(default_factory=lambda: next(_trace_ids))

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError("duration must be non-negative")
        if self.cores < 1:
            raise ValueError("cores must be >= 1")

    @property
    def charge(self) -> float:
        return self.duration * self.cores


class Trace:
    """An immutable, submit-time-ordered collection of trace jobs."""

    def __init__(self, jobs: Iterable[TraceJob]):
        self.jobs: List[TraceJob] = sorted(jobs, key=lambda j: (j.submit, j.job_id))

    # -- basic shape ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[TraceJob]:
        return iter(self.jobs)

    def __getitem__(self, i: int) -> TraceJob:
        return self.jobs[i]

    @property
    def n_jobs(self) -> int:
        return len(self.jobs)

    @property
    def start(self) -> float:
        return self.jobs[0].submit if self.jobs else 0.0

    @property
    def end(self) -> float:
        return self.jobs[-1].submit if self.jobs else 0.0

    @property
    def span(self) -> float:
        return self.end - self.start

    def users(self) -> List[str]:
        return sorted({j.user for j in self.jobs})

    # -- per-user views -------------------------------------------------------

    def for_user(self, user: str) -> "Trace":
        return Trace(j for j in self.jobs if j.user == user)

    def filter(self, predicate: Callable[[TraceJob], bool]) -> "Trace":
        return Trace(j for j in self.jobs if predicate(j))

    def relabel(self, mapping: Dict[str, str]) -> "Trace":
        """Map user names (e.g. raw identities -> category labels)."""
        return Trace(replace(j, user=mapping.get(j.user, j.user))
                     for j in self.jobs)

    # -- statistics ----------------------------------------------------------

    def arrival_times(self, user: Optional[str] = None) -> np.ndarray:
        jobs = self.jobs if user is None else [j for j in self.jobs if j.user == user]
        return np.array([j.submit for j in jobs], dtype=float)

    def inter_arrival_times(self, user: Optional[str] = None) -> np.ndarray:
        times = self.arrival_times(user)
        return np.diff(times) if times.size > 1 else np.array([], dtype=float)

    def durations(self, user: Optional[str] = None) -> np.ndarray:
        jobs = self.jobs if user is None else [j for j in self.jobs if j.user == user]
        return np.array([j.duration for j in jobs], dtype=float)

    def total_usage(self, user: Optional[str] = None) -> float:
        jobs = self.jobs if user is None else [j for j in self.jobs if j.user == user]
        return float(sum(j.charge for j in jobs))

    def usage_shares(self) -> Dict[str, float]:
        """Per-user fraction of total wall-clock (core-seconds) usage."""
        total = self.total_usage()
        if total == 0:
            return {u: 0.0 for u in self.users()}
        return {u: self.total_usage(u) / total for u in self.users()}

    def job_shares(self) -> Dict[str, float]:
        """Per-user fraction of the number of submitted jobs."""
        n = self.n_jobs
        if n == 0:
            return {}
        counts: Dict[str, int] = {}
        for j in self.jobs:
            counts[j.user] = counts.get(j.user, 0) + 1
        return {u: c / n for u, c in sorted(counts.items())}

    def arrival_histogram(self, bin_size: float = 86400.0,
                          user: Optional[str] = None) -> "tuple[np.ndarray, np.ndarray]":
        """Job arrivals per time bin (Figure 4 uses one-day bins).

        Returns ``(bin_edges, counts)``.
        """
        times = self.arrival_times(user)
        if times.size == 0:
            return np.array([0.0, bin_size]), np.array([0])
        lo = np.floor(self.start / bin_size) * bin_size
        hi = np.ceil((self.end + 1e-9) / bin_size) * bin_size
        if hi <= lo:
            hi = lo + bin_size
        edges = np.arange(lo, hi + bin_size / 2, bin_size)
        counts, _ = np.histogram(times, bins=edges)
        return edges, counts

    def peak_submission_rate(self, window: float = 60.0) -> float:
        """Maximum jobs submitted in any ``window`` (jobs/minute for 60 s)."""
        _, counts = self.arrival_histogram(bin_size=window)
        return float(counts.max()) if counts.size else 0.0

    # -- I/O ------------------------------------------------------------------

    HEADER = "# job_id\tuser\tsubmit\tduration\tcores\tadmin"

    def save(self, path) -> None:
        """Write a tab-separated trace file (SWF-inspired, self-describing)."""
        lines = [self.HEADER]
        for j in self.jobs:
            lines.append(f"{j.job_id}\t{j.user}\t{j.submit:.6f}\t"
                         f"{j.duration:.6f}\t{j.cores}\t{int(j.admin)}")
        Path(path).write_text("\n".join(lines) + "\n")

    @classmethod
    def load(cls, path) -> "Trace":
        jobs: List[TraceJob] = []
        for raw in Path(path).read_text().splitlines():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            job_id, user, submit, duration, cores, admin = line.split("\t")
            jobs.append(TraceJob(user=user, submit=float(submit),
                                 duration=float(duration), cores=int(cores),
                                 admin=bool(int(admin)), job_id=int(job_id)))
        return cls(jobs)

    @classmethod
    def concatenate(cls, traces: Sequence["Trace"]) -> "Trace":
        return cls(j for t in traces for j in t.jobs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Trace {self.n_jobs} jobs, {len(self.users())} users, span {self.span:.0f}s>"
