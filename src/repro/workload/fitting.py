"""Model selection: MLE fits across the family zoo, BIC, and KS validation.

Follows the paper's recipe (Section IV-2): fit every candidate family by
maximum likelihood, pick the winner by the Bayesian information criterion,
and report Kolmogorov–Smirnov goodness-of-fit statistics alongside the
median of the raw data ("Downey and Feitelson make a strong case regarding
the lack of relevance of mean and CV metrics ... they suggest the use of
median values as a metric more resilient to outliers").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np
from scipy import stats as _scipy_stats

from .distributions import FAMILIES, Family, FitError, FittedDistribution

__all__ = ["FitResult", "fit_family", "fit_all", "best_fit", "ks_statistic",
           "whole_second_median"]


@dataclass(frozen=True)
class FitResult:
    """Outcome of fitting one family to one data set."""

    fitted: FittedDistribution
    loglik: float
    bic: float
    ks: float
    n: int

    @property
    def family_name(self) -> str:
        return self.fitted.family.name

    def row(self) -> str:
        """A Table II/III-style row fragment."""
        return f"{self.fitted.describe()}  KS={self.ks:.2f}  BIC={self.bic:.1f}"


def ks_statistic(data: np.ndarray, fitted: FittedDistribution) -> float:
    """Two-sided Kolmogorov–Smirnov statistic against the fitted CDF."""
    data = np.asarray(data, dtype=float)
    result = _scipy_stats.kstest(data, fitted.cdf)
    return float(result.statistic)


def whole_second_median(data: np.ndarray) -> float:
    """Median after truncating to whole seconds.

    The paper's medians "are even seconds, since the time stamps from the
    original trace are limited to second accuracy" — U3's median
    inter-arrival of 0 s means most jobs arrive within the same measured
    second.
    """
    data = np.floor(np.asarray(data, dtype=float))
    return float(np.median(data)) if data.size else math.nan


def fit_family(data: np.ndarray, family: Family) -> FitResult:
    """Fit one family and compute its selection metrics."""
    data = np.asarray(data, dtype=float)
    fitted = family.fit(data)
    ll = fitted.loglik(data)
    bic = fitted.n_params * math.log(data.size) - 2.0 * ll
    ks = ks_statistic(data, fitted)
    return FitResult(fitted=fitted, loglik=ll, bic=bic, ks=ks, n=int(data.size))


def fit_all(data: np.ndarray,
            families: Optional[Sequence[str]] = None,
            subsample: Optional[int] = None,
            rng: Optional[np.random.Generator] = None) -> List[FitResult]:
    """Fit every candidate family; results sorted by BIC (best first).

    Families that fail to fit (wrong support, non-convergence) are skipped —
    with 18 heterogeneous candidates over real data that is expected, not
    exceptional.  ``subsample`` caps the number of points used for fitting
    (a speed/accuracy trade-off for very large traces); the KS statistic is
    still evaluated on the fitting sample so results stay self-consistent.
    """
    data = np.asarray(data, dtype=float)
    if subsample is not None and data.size > subsample:
        rng = rng if rng is not None else np.random.default_rng(0)
        data = rng.choice(data, size=subsample, replace=False)
    names = list(families) if families is not None else sorted(FAMILIES)
    results: List[FitResult] = []
    for name in names:
        family = FAMILIES[name]
        try:
            results.append(fit_family(data, family))
        except FitError:
            continue
    results.sort(key=lambda r: r.bic)
    return results


def best_fit(data: np.ndarray,
             families: Optional[Sequence[str]] = None,
             subsample: Optional[int] = None,
             rng: Optional[np.random.Generator] = None) -> FitResult:
    """The BIC-optimal family for ``data`` (paper's selection criterion)."""
    results = fit_all(data, families=families, subsample=subsample, rng=rng)
    if not results:
        raise FitError("no candidate family produced a valid fit")
    return results[0]
