"""Synthetic trace generation from statistical workload models.

Implements the paper's generation mechanism (Section IV-2): arrival time is
modeled as a function of probability through the inverse CDF, and uniform
random values are re-scaled to an *effective range* so every sample lands
within the intended time frame ("for example, in the case of U65, the
effective range [7.451e-3, 9.946e-1] is used to ensure all generated values
are within the same calendar year").

On top of the continuous arrival-time model, an optional *batch* layer
reproduces the second-scale clustering of real grid submission (portal and
script submitters push jobs in bursts — the reason U3's median inter-arrival
time is zero whole seconds): each sampled arrival anchor expands into a
batch of jobs separated by small exponential gaps.

Generated workloads are scaled to a target system load exactly: "the traces
contain a total load of 95% of the theoretical maximum of the combined
infrastructure".
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Mapping, Optional, Protocol, Sequence

import numpy as np

from .trace import Trace, TraceJob

__all__ = [
    "SamplableDistribution",
    "TruncatedICDFSampler",
    "BatchModel",
    "ArrivalModel",
    "DurationModel",
    "UserWorkloadModel",
    "SyntheticWorkloadGenerator",
    "compress_to_span",
    "scale_trace_load",
    "add_pollution",
    "allocate_counts",
]


class SamplableDistribution(Protocol):
    """Anything with a cdf and an inverse cdf (fitted dist or composite)."""

    def cdf(self, x): ...

    def icdf(self, q): ...


class TruncatedICDFSampler:
    """Inverse-CDF sampling over an effective probability range.

    The uniform draw is re-scaled into ``[cdf(t_min), cdf(t_max)]`` before
    inversion, so all samples fall inside ``[t_min, t_max]`` — the paper's
    range-rescaling mechanism.
    """

    def __init__(self, dist: SamplableDistribution, t_min: float, t_max: float):
        if t_max <= t_min:
            raise ValueError("t_max must exceed t_min")
        self.dist = dist
        self.t_min = float(t_min)
        self.t_max = float(t_max)
        self.q_lo = float(np.asarray(dist.cdf(t_min)).reshape(-1)[0])
        self.q_hi = float(np.asarray(dist.cdf(t_max)).reshape(-1)[0])
        if self.q_hi <= self.q_lo:
            raise ValueError(
                "distribution has no probability mass in the requested range")

    @property
    def effective_range(self) -> tuple:
        """The paper-reported (q_lo, q_hi) pair."""
        return (self.q_lo, self.q_hi)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        u = rng.uniform(0.0, 1.0, size=n)
        q = self.q_lo + u * (self.q_hi - self.q_lo)
        x = np.asarray(self.dist.icdf(q), dtype=float).reshape(-1)
        return np.clip(x, self.t_min, self.t_max)


@dataclass(frozen=True)
class BatchModel:
    """Second-scale submission clustering around arrival anchors.

    ``mean_batch_size`` jobs (geometric) arrive per anchor, consecutive jobs
    separated by exponential gaps of mean ``mean_gap`` seconds.
    """

    mean_batch_size: float = 1.0
    mean_gap: float = 1.0

    def __post_init__(self) -> None:
        if self.mean_batch_size < 1.0:
            raise ValueError("mean_batch_size must be >= 1")
        if self.mean_gap < 0.0:
            raise ValueError("mean_gap must be non-negative")

    def batch_sizes(self, n_jobs: int, rng: np.random.Generator) -> np.ndarray:
        """Batch sizes summing exactly to ``n_jobs``."""
        if self.mean_batch_size <= 1.0:
            return np.ones(n_jobs, dtype=int)
        p = 1.0 / self.mean_batch_size
        sizes = []
        remaining = n_jobs
        while remaining > 0:
            size = int(min(rng.geometric(p), remaining))
            sizes.append(size)
            remaining -= size
        return np.array(sizes, dtype=int)

    def expand(self, anchors: np.ndarray, sizes: np.ndarray,
               rng: np.random.Generator) -> np.ndarray:
        """Turn batch anchors into individual job arrival times."""
        times = []
        for anchor, size in zip(anchors, sizes):
            if size == 1 or self.mean_gap == 0.0:
                offsets = np.zeros(size)
            else:
                gaps = rng.exponential(self.mean_gap, size=size - 1)
                offsets = np.concatenate([[0.0], np.cumsum(gaps)])
            times.append(anchor + offsets)
        return np.concatenate(times) if times else np.empty(0)


@dataclass(frozen=True)
class ArrivalModel:
    """Per-user arrival-time model: truncated ICDF sampler + batching."""

    sampler: TruncatedICDFSampler
    batching: Optional[BatchModel] = None

    def sample_arrivals(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n <= 0:
            return np.empty(0)
        if self.batching is None:
            return np.sort(self.sampler.sample(n, rng))
        sizes = self.batching.batch_sizes(n, rng)
        anchors = np.sort(self.sampler.sample(len(sizes), rng))
        return np.sort(self.batching.expand(anchors, sizes, rng))


@dataclass(frozen=True)
class DurationModel:
    """Per-user job-duration model with support clipping.

    ``max_duration`` guards the heavy-tailed fits (U3's Burr duration fit
    has an infinite mean) so a single sample cannot dominate a trace.
    """

    dist: SamplableDistribution
    min_duration: float = 1.0
    max_duration: Optional[float] = None

    def sample_durations(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n <= 0:
            return np.empty(0)
        u = rng.uniform(0.0, 1.0, size=n)
        x = np.asarray(self.dist.icdf(u), dtype=float).reshape(-1)
        hi = self.max_duration if self.max_duration is not None else np.inf
        return np.clip(x, self.min_duration, hi)


@dataclass(frozen=True)
class UserWorkloadModel:
    name: str
    arrival: ArrivalModel
    duration: DurationModel


def allocate_counts(shares: Mapping[str, float], n: int) -> Dict[str, int]:
    """Integer job counts per user honoring shares; sums exactly to ``n``.

    Largest-remainder apportionment keeps rounding bias out of small users.
    """
    total = sum(shares.values())
    if total <= 0:
        raise ValueError("shares must sum to a positive value")
    raw = {u: n * s / total for u, s in shares.items()}
    counts = {u: int(np.floor(v)) for u, v in raw.items()}
    leftover = n - sum(counts.values())
    remainders = sorted(raw, key=lambda u: raw[u] - counts[u], reverse=True)
    for u in remainders[:leftover]:
        counts[u] += 1
    return counts


class SyntheticWorkloadGenerator:
    """Generates traces from per-user models with exact load control.

    ``job_shares`` fixes how many of the ``n_jobs`` each user submits;
    ``usage_shares`` plus ``total_charge`` pin the wall-clock usage mix and
    total load: each user's sampled durations are rescaled by a single
    factor so that ``sum(durations_u) == usage_share_u * total_charge``.
    The scaling preserves every distributional shape (Weibull stays
    Weibull) — only the scale parameter effectively moves, which is exactly
    what the paper does when projecting the year-long model onto a 6-hour
    test ("to scale the trace load up to the desired system load, a higher
    scaling factor is required", Section IV-A.5).
    """

    def __init__(self, models: Mapping[str, UserWorkloadModel],
                 job_shares: Mapping[str, float],
                 n_jobs: int,
                 usage_shares: Optional[Mapping[str, float]] = None,
                 total_charge: Optional[float] = None):
        missing = set(job_shares) - set(models)
        if missing:
            raise ValueError(f"no model for users: {sorted(missing)}")
        if (usage_shares is None) != (total_charge is None):
            raise ValueError("usage_shares and total_charge go together")
        if n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        self.models = dict(models)
        self.job_shares = dict(job_shares)
        self.n_jobs = int(n_jobs)
        self.usage_shares = dict(usage_shares) if usage_shares else None
        self.total_charge = total_charge

    def generate(self, rng: np.random.Generator) -> Trace:
        counts = allocate_counts(self.job_shares, self.n_jobs)
        jobs = []
        for user, count in counts.items():
            if count == 0:
                continue
            model = self.models[user]
            arrivals = model.arrival.sample_arrivals(count, rng)
            durations = model.duration.sample_durations(count, rng)
            if self.usage_shares is not None:
                target = self.usage_shares.get(user, 0.0) * float(self.total_charge)
                current = float(durations.sum())
                if current > 0 and target > 0:
                    durations = durations * (target / current)
            for t, d in zip(arrivals, durations):
                jobs.append(TraceJob(user=user, submit=float(t), duration=float(d)))
        return Trace(jobs)


# ---------------------------------------------------------------------------
# trace transformations
# ---------------------------------------------------------------------------

def compress_to_span(trace: Trace, span: float) -> Trace:
    """Linearly remap arrival times onto ``[0, span]``.

    The core scaling step of the evaluation: "workload modeling is used to
    project long term usage patterns to a shorter time span which is more
    suitable for repeated evaluation" (Section IV-A.2).  Durations are left
    untouched — use :func:`scale_trace_load` for load control.
    """
    if span <= 0:
        raise ValueError("span must be positive")
    if trace.n_jobs == 0:
        return trace
    lo, hi = trace.start, trace.end
    width = hi - lo
    if width == 0:
        return Trace(replace(j, submit=0.0) for j in trace.jobs)
    # divide before scaling: (submit - lo) <= width keeps the ratio in
    # [0, 1], whereas span / width overflows to inf for subnormal widths
    # (turning the earliest submit into 0 * inf = NaN)
    return Trace(replace(j, submit=(j.submit - lo) / width * span)
                 for j in trace.jobs)


def scale_trace_load(trace: Trace, target_charge: float) -> Trace:
    """Uniformly scale durations so total core-seconds hit ``target_charge``."""
    current = trace.total_usage()
    if current <= 0:
        raise ValueError("trace has no usage to scale")
    factor = target_charge / current
    return Trace(replace(j, duration=j.duration * factor) for j in trace.jobs)


def add_pollution(trace: Trace, rng: np.random.Generator,
                  job_fraction: float = 0.15,
                  usage_fraction: float = 0.015,
                  admin_user: str = "root",
                  zero_duration_fraction: float = 0.4) -> Trace:
    """Add the noise the cleaning pipeline is supposed to remove.

    Produces a polluted trace in which admin/monitoring jobs and
    zero-duration (cancelled/failed) jobs make up ``job_fraction`` of all
    jobs and ``usage_fraction`` of all usage — the paper removed "about 15%
    of the total number of jobs, representing 1.5% of the total usage".
    """
    if not 0.0 <= job_fraction < 1.0:
        raise ValueError("job_fraction must lie in [0, 1)")
    if not 0.0 <= usage_fraction < 1.0:
        raise ValueError("usage_fraction must lie in [0, 1)")
    n_clean = trace.n_jobs
    if n_clean == 0:
        return trace
    n_total = int(round(n_clean / (1.0 - job_fraction)))
    n_noise = n_total - n_clean
    n_zero = int(round(n_noise * zero_duration_fraction))
    n_admin = n_noise - n_zero
    clean_usage = trace.total_usage()
    noise_usage = clean_usage * usage_fraction / (1.0 - usage_fraction)
    lo, hi = trace.start, trace.end
    users = trace.users()
    jobs = list(trace.jobs)
    # zero-duration cancelled/failed jobs from ordinary users
    for _ in range(n_zero):
        jobs.append(TraceJob(user=users[int(rng.integers(len(users)))],
                             submit=float(rng.uniform(lo, hi)), duration=0.0))
    # periodic admin/monitoring jobs with small durations summing to the
    # target noise usage
    if n_admin > 0:
        weights = rng.uniform(0.5, 1.5, size=n_admin)
        durations = weights / weights.sum() * noise_usage
        submits = np.linspace(lo, hi, n_admin)
        for t, d in zip(submits, durations):
            jobs.append(TraceJob(user=admin_user, submit=float(t),
                                 duration=float(d), admin=True))
    return Trace(jobs)
