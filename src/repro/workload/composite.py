"""Phase-weighted composite distributions (paper Equation 1).

U65's job arrival is modeled in four phases, each with its own fitted
distribution; the combined probability density scales each phase PDF by the
fraction of jobs falling in that section of the trace:

    PDF(x) = sum_n (phase_n_usage / total_usage) * PDF_n(x)

The composite supports pdf/cdf evaluation, inverse-CDF via bracketed root
finding, and both the paper's ICDF sampling and direct mixture sampling.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import brentq

from .distributions import FittedDistribution

__all__ = ["CompositeDistribution"]


class CompositeDistribution:
    """A finite mixture with explicit weights (Equation 1)."""

    def __init__(self, components: Sequence[Tuple[float, FittedDistribution]]):
        if not components:
            raise ValueError("a composite needs at least one component")
        weights = np.array([w for w, _ in components], dtype=float)
        if np.any(weights < 0):
            raise ValueError("component weights must be non-negative")
        total = weights.sum()
        if total <= 0:
            raise ValueError("component weights must sum to a positive value")
        self.weights = weights / total
        self.components: List[FittedDistribution] = [d for _, d in components]

    @property
    def n_components(self) -> int:
        return len(self.components)

    # -- densities -------------------------------------------------------

    def pdf(self, x) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x, dtype=float)
        for w, dist in zip(self.weights, self.components):
            out += w * np.nan_to_num(dist.pdf(x), nan=0.0)
        return out

    def logpdf(self, x) -> np.ndarray:
        with np.errstate(divide="ignore"):
            return np.log(self.pdf(x))

    def cdf(self, x) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x, dtype=float)
        for w, dist in zip(self.weights, self.components):
            out += w * np.nan_to_num(dist.cdf(x), nan=0.0)
        return out

    def loglik(self, data: np.ndarray) -> float:
        return float(np.sum(self.logpdf(np.asarray(data, dtype=float))))

    # -- inverse CDF ----------------------------------------------------------

    def _bracket(self) -> Tuple[float, float]:
        eps = 1e-10
        los, his = [], []
        for dist in self.components:
            lo, hi = dist.icdf(eps), dist.icdf(1 - eps)
            if np.isfinite(lo):
                los.append(float(lo))
            if np.isfinite(hi):
                his.append(float(hi))
        if not los or not his:
            raise ValueError("cannot bracket the composite support")
        return min(los), max(his)

    def _inversion_grid(self, points: int = 16385):
        """Cached (x, cdf(x)) grid for fast monotone inversion."""
        grid = getattr(self, "_grid_cache", None)
        if grid is None:
            lo, hi = self._bracket()
            x = np.linspace(lo, hi, points)
            c = np.maximum.accumulate(self.cdf(x))  # enforce monotonicity
            grid = (x, c)
            self._grid_cache = grid
        return grid

    def icdf(self, q, exact: bool = False) -> np.ndarray:
        """Inverse CDF.

        The default inverts through a cached fine grid (vectorized; error
        bounded by the grid pitch over the support).  ``exact=True`` uses
        bracketed Brent root finding per quantile instead.
        """
        q = np.atleast_1d(np.asarray(q, dtype=float))
        if np.any((q < 0) | (q > 1)):
            raise ValueError("quantiles must lie in [0, 1]")
        lo, hi = self._bracket()
        if not exact:
            x_grid, c_grid = self._inversion_grid()
            return np.interp(q, c_grid, x_grid)
        out = np.empty_like(q)
        for i, qi in enumerate(q):
            if qi <= self.cdf(lo):
                out[i] = lo
            elif qi >= self.cdf(hi):
                out[i] = hi
            else:
                out[i] = brentq(lambda x: float(self.cdf(x)) - qi, lo, hi,
                                xtol=1e-9 * max(1.0, abs(hi - lo)))
        return out if out.size > 1 else out.reshape(-1)

    def median(self) -> float:
        return float(self.icdf(np.array([0.5]))[0])

    # -- sampling --------------------------------------------------------------

    def sample(self, n: int, rng: np.random.Generator,
               method: str = "mixture") -> np.ndarray:
        """Draw ``n`` samples.

        ``mixture`` picks a component per sample by weight and draws from it
        (exact and fast).  ``icdf`` draws uniforms and inverts the composite
        CDF — the paper's mechanism, kept because the truncated-range
        sampler builds on it.
        """
        if method == "mixture":
            counts = rng.multinomial(n, self.weights)
            parts = [dist.sample(int(c), rng)
                     for dist, c in zip(self.components, counts) if c > 0]
            out = np.concatenate(parts) if parts else np.empty(0)
            rng.shuffle(out)
            return out
        if method == "icdf":
            u = rng.uniform(0.0, 1.0, size=n)
            return np.asarray(self.icdf(u), dtype=float)
        raise ValueError(f"unknown sampling method {method!r}")
