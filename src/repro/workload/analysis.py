"""Trace analysis: cleaning, user categorization, periodicity, phases.

Implements the preprocessing and characterization steps of paper Section
IV-1/IV-2:

* remove administrator/monitoring jobs and zero-duration outliers before
  modeling (Feitelson's methodology; ~15% of jobs, 1.5% of usage in the
  2012 national trace);
* rank users by total wall-clock usage and isolate the dominating ones
  (U65, U30, U3) while grouping the long tail (Uoth);
* search for periodicity with autocorrelation functions over daily binned
  arrivals;
* partition a dominant user's arrivals into experiment phases (U65's
  roughly-quarterly cycles, Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .trace import Trace, TraceJob

__all__ = [
    "CleaningReport",
    "clean_trace",
    "UserCategories",
    "categorize_users",
    "autocorrelation",
    "detect_periodicity",
    "detect_phases",
]

DAY = 86400.0


# ---------------------------------------------------------------------------
# cleaning
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CleaningReport:
    """What cleaning removed, in the units the paper reports."""

    jobs_before: int
    jobs_after: int
    usage_before: float
    usage_after: float

    @property
    def removed_job_fraction(self) -> float:
        if self.jobs_before == 0:
            return 0.0
        return (self.jobs_before - self.jobs_after) / self.jobs_before

    @property
    def removed_usage_fraction(self) -> float:
        if self.usage_before == 0:
            return 0.0
        return (self.usage_before - self.usage_after) / self.usage_before


def clean_trace(trace: Trace,
                admin_users: Optional[Sequence[str]] = None) -> Tuple[Trace, CleaningReport]:
    """Remove admin/monitoring jobs and zero-duration outliers.

    Jobs are dropped if flagged ``admin``, owned by a user in
    ``admin_users``, or of zero duration ("most likely due to being
    canceled or failed").
    """
    admin_set = set(admin_users or ())

    def keep(job: TraceJob) -> bool:
        return not job.admin and job.user not in admin_set and job.duration > 0

    cleaned = trace.filter(keep)
    report = CleaningReport(
        jobs_before=trace.n_jobs,
        jobs_after=cleaned.n_jobs,
        usage_before=trace.total_usage(),
        usage_after=cleaned.total_usage(),
    )
    return cleaned, report


# ---------------------------------------------------------------------------
# user categorization
# ---------------------------------------------------------------------------

@dataclass
class UserCategories:
    """Dominant users isolated, long tail grouped (paper Section IV-1)."""

    top_users: List[str]
    labels: Dict[str, str]
    usage_shares: Dict[str, float]
    job_shares: Dict[str, float]
    other_label: str = "Uoth"

    def label_for(self, user: str) -> str:
        return self.labels.get(user, self.other_label)

    def relabel(self, trace: Trace) -> Trace:
        mapping = {u: self.label_for(u) for u in trace.users()}
        return trace.relabel(mapping)

    def category_names(self) -> List[str]:
        seen: List[str] = []
        for u in self.top_users:
            lbl = self.labels[u]
            if lbl not in seen:
                seen.append(lbl)
        seen.append(self.other_label)
        return seen


def categorize_users(trace: Trace, top_n: int = 3,
                     label_style: str = "percent") -> UserCategories:
    """Rank users by total wall-clock usage and label the top ``top_n``.

    ``label_style='percent'`` names categories after their rounded usage
    percentage, the paper's convention: the 2012 trace yields U65 (65.25%
    of usage, 81.03% of jobs), U30 (30.49%/6.58%), U3 (2.86%/9.47%), and
    Uoth for the remainder (1.40%/2.93%).  ``label_style='rank'`` yields
    U1, U2, ... instead (robust when percentages collide).
    """
    usage = trace.usage_shares()
    jobs = trace.job_shares()
    ranked = sorted(usage, key=lambda u: (-usage[u], u))
    top = ranked[:top_n]
    labels: Dict[str, str] = {}
    used: set = set()
    for i, user in enumerate(top):
        if label_style == "percent":
            label = f"U{max(1, round(usage[user] * 100))}"
            while label in used:  # collision: disambiguate by rank suffix
                label += "b"
        else:
            label = f"U{i + 1}"
        used.add(label)
        labels[user] = label
    cat_usage: Dict[str, float] = {}
    cat_jobs: Dict[str, float] = {}
    for user in trace.users():
        lbl = labels.get(user, "Uoth")
        cat_usage[lbl] = cat_usage.get(lbl, 0.0) + usage.get(user, 0.0)
        cat_jobs[lbl] = cat_jobs.get(lbl, 0.0) + jobs.get(user, 0.0)
    return UserCategories(top_users=top, labels=labels,
                          usage_shares=cat_usage, job_shares=cat_jobs)


# ---------------------------------------------------------------------------
# periodicity
# ---------------------------------------------------------------------------

def autocorrelation(series: np.ndarray, max_lag: Optional[int] = None) -> np.ndarray:
    """Normalized autocorrelation function of a 1-D series.

    ``acf[0] == 1``; biased estimator (divides by N), matching MATLAB's
    ``autocorr`` normalization.
    """
    x = np.asarray(series, dtype=float)
    n = x.size
    if n < 2:
        raise ValueError("series too short for autocorrelation")
    x = x - x.mean()
    denom = float(np.dot(x, x))
    if denom == 0.0:
        return np.zeros(1 if max_lag is None else max_lag + 1)
    # FFT-based full ACF, then truncate — O(n log n) instead of O(n^2).
    size = int(2 ** np.ceil(np.log2(2 * n - 1)))
    fx = np.fft.rfft(x, size)
    acov = np.fft.irfft(fx * np.conj(fx), size)[:n]
    acf = acov / denom
    if max_lag is not None:
        acf = acf[:max_lag + 1]
    return acf


def detect_periodicity(arrival_times: np.ndarray,
                       bin_size: float = DAY,
                       candidate_periods: Optional[Sequence[float]] = None,
                       threshold: float = 0.3) -> Dict[float, float]:
    """ACF scores at candidate periods; entries above ``threshold`` only.

    The paper searched for daily, weekly, and monthly patterns "using auto
    correlation functions ... however, no clear auto correlation patterns
    could be found"; for U65 a roughly quarterly pattern is visible instead.
    """
    times = np.asarray(arrival_times, dtype=float)
    if times.size < 2:
        return {}
    if candidate_periods is None:
        candidate_periods = [DAY, 7 * DAY, 30 * DAY, 91 * DAY]
    lo, hi = times.min(), times.max()
    n_bins = max(2, int(np.ceil((hi - lo) / bin_size)) + 1)
    counts, _ = np.histogram(times, bins=n_bins,
                             range=(lo, lo + n_bins * bin_size))
    acf = autocorrelation(counts)
    found: Dict[float, float] = {}
    for period in candidate_periods:
        lag = int(round(period / bin_size))
        if 1 <= lag < acf.size:
            score = float(acf[lag])
            if score >= threshold:
                found[float(period)] = score
    return found


# ---------------------------------------------------------------------------
# phase detection
# ---------------------------------------------------------------------------

def detect_phases(arrival_times: np.ndarray, n_phases: int = 4,
                  bin_size: float = DAY, smooth_bins: int = 7,
                  quiet_fraction: float = 0.05) -> List[Tuple[float, float]]:
    """Partition arrivals into activity phases split at low-activity gaps.

    U65's arrivals cluster in ~3-month experiment cycles separated by quiet
    stretches; the paper fits a separate distribution per phase (Figure 5,
    dashed delimiters).  We smooth the daily histogram, mark bins below
    ``quiet_fraction`` of the peak as quiet, and place one cut at the center
    of each of the ``n_phases - 1`` *widest* quiet runs.  If the histogram
    has fewer quiet gaps than needed, the remaining cuts fall back to
    equal-count quantiles.

    Returns ``n_phases`` half-open intervals covering [min, max].
    """
    times = np.sort(np.asarray(arrival_times, dtype=float))
    if times.size < n_phases:
        raise ValueError("fewer arrivals than requested phases")
    if n_phases == 1:
        return [(float(times[0]), float(times[-1]) + bin_size)]
    lo, hi = times[0], times[-1]
    n_bins = max(n_phases * 2, int(np.ceil((hi - lo) / bin_size)) + 1)
    counts, edges = np.histogram(times, bins=n_bins)
    if smooth_bins > 1:
        kernel = np.ones(smooth_bins) / smooth_bins
        smoothed = np.convolve(counts, kernel, mode="same")
    else:
        smoothed = counts.astype(float)
    quiet = smoothed <= quiet_fraction * smoothed.max()
    # contiguous quiet runs strictly inside the data (edge runs separate
    # nothing and are discarded)
    runs: List[Tuple[int, int]] = []  # (start, length)
    start = None
    for i, q in enumerate(quiet):
        if q and start is None:
            start = i
        elif not q and start is not None:
            runs.append((start, i - start))
            start = None
    if start is not None:
        runs.append((start, len(quiet) - start))
    interior = [(s, w) for s, w in runs if s > 0 and s + w < n_bins]
    interior.sort(key=lambda sw: -sw[1])
    cut_bins = sorted(s + w // 2 for s, w in interior[:n_phases - 1])
    cuts = [float(edges[c]) for c in cut_bins]
    if len(cuts) < n_phases - 1:
        # fall back: equal-count quantile cuts for the remainder
        quantiles = np.quantile(times, np.linspace(0, 1, n_phases + 1)[1:-1])
        for q in quantiles:
            if len(cuts) == n_phases - 1:
                break
            if all(abs(q - c) > bin_size for c in cuts):
                cuts.append(float(q))
        cuts.sort()
    boundaries = [float(lo)] + cuts[:n_phases - 1] + [float(hi) + bin_size]
    boundaries = sorted(boundaries)
    return [(boundaries[i], boundaries[i + 1]) for i in range(len(boundaries) - 1)]
