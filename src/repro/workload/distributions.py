"""The 18-family distribution zoo used for workload model fitting.

"For all users, the best fit was found by modeling each data set using a
set of 18 different distributions, and choosing the best fit based on the
Bayesian information criterion.  The set of distributions includes
distributions such as normal, Weibull, Generalized Extreme Value (GEV),
Birnbaum-Saunders (BS), Pareto, Burr, and Log-normal." (paper Section IV-2)

Each family wraps a ``scipy.stats`` distribution but exposes the paper's
(MATLAB-style) parameterization — e.g. ``GEV(k, sigma, mu)`` where scipy's
``genextreme`` uses ``c = -k`` — so the reproduced Tables II/III read like
the originals.  Families provide pdf/cdf/icdf/logpdf, sampling, and MLE
fitting; positive-support families fit with the location pinned at zero,
matching MATLAB's two/three-parameter fits.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

__all__ = ["Family", "FittedDistribution", "FitError", "FAMILIES", "get_family"]


class FitError(RuntimeError):
    """Raised when MLE fitting fails or produces a degenerate model."""


@dataclass(frozen=True)
class FittedDistribution:
    """A frozen distribution in the family's paper parameterization."""

    family: "Family"
    params: Tuple[float, ...]

    def _frozen(self):
        # Freezing a scipy distribution is expensive (it rebuilds docs);
        # cache the frozen object on first use.  The dataclass is frozen so
        # the cache cannot go stale.
        cached = self.__dict__.get("_frozen_cache")
        if cached is None:
            cached = self.family.freeze(*self.params)
            object.__setattr__(self, "_frozen_cache", cached)
        return cached
    def pdf(self, x):
        return self._frozen().pdf(x)

    def logpdf(self, x):
        return self._frozen().logpdf(x)

    def cdf(self, x):
        return self._frozen().cdf(x)

    def icdf(self, q):
        """Inverse CDF (ppf) — the sampling workhorse (paper Section IV-2)."""
        return self._frozen().ppf(q)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return np.asarray(self._frozen().rvs(size=n, random_state=rng), dtype=float)

    def median(self) -> float:
        return float(self._frozen().median())

    def loglik(self, data: np.ndarray) -> float:
        with np.errstate(divide="ignore", invalid="ignore"):
            lp = self.logpdf(np.asarray(data, dtype=float))
        return float(np.sum(lp))

    @property
    def n_params(self) -> int:
        return len(self.params)

    def describe(self) -> str:
        inner = ", ".join(f"{n} = {v:.4g}"
                          for n, v in zip(self.family.param_names, self.params))
        return f"{self.family.display_name}({inner})"

    def __repr__(self) -> str:
        return self.describe()


class Family:
    """One distribution family with paper-style parameters.

    ``to_scipy(params)`` maps paper parameters to a frozen scipy
    distribution; ``from_scipy(scipy_params)`` maps a scipy ``fit`` result
    (shapes..., loc, scale) back.  ``fit_kwargs`` pins parameters during
    MLE (most positive-support families pin ``floc=0``).
    """

    def __init__(self, name: str, display_name: str,
                 param_names: Sequence[str],
                 scipy_dist,
                 to_scipy: Callable[[Tuple[float, ...]], Tuple],
                 from_scipy: Callable[[Tuple[float, ...]], Tuple[float, ...]],
                 fit_kwargs: Optional[Dict] = None,
                 positive_support: bool = False,
                 standardize: bool = False,
                 initial_guess: Optional[Callable[[np.ndarray], Tuple]] = None):
        self.name = name
        self.display_name = display_name
        self.param_names = tuple(param_names)
        self.scipy_dist = scipy_dist
        self._to_scipy = to_scipy
        self._from_scipy = from_scipy
        self.fit_kwargs = fit_kwargs or {}
        self.positive_support = positive_support
        # Location-scale families: fit on standardized data and rescale the
        # result.  scipy's MLE start points are poor for data far from the
        # origin (e.g. GEV over arrival times ~1e7 s) and diverge otherwise.
        self.standardize = standardize
        # Optional moment/L-moment estimator supplying MLE start values (in
        # scipy parameter order); GEV needs this — its default-start MLE
        # lands in bad local optima even on GEV-generated data.
        self.initial_guess = initial_guess

    @property
    def n_params(self) -> int:
        return len(self.param_names)

    def freeze(self, *params: float):
        args = self._to_scipy(tuple(params))
        return self.scipy_dist(*args)

    def make(self, *params: float) -> FittedDistribution:
        return FittedDistribution(self, tuple(float(p) for p in params))

    def fit(self, data: np.ndarray) -> FittedDistribution:
        """MLE fit returning paper-style parameters.

        Raises :class:`FitError` on non-convergence, invalid data for the
        support, or a degenerate likelihood.
        """
        data = np.asarray(data, dtype=float)
        if data.size < max(8, self.n_params + 1):
            raise FitError(f"{self.name}: too few samples ({data.size})")
        if self.positive_support and np.any(data <= 0):
            raise FitError(f"{self.name}: requires strictly positive data")
        shift, spread = 0.0, 1.0
        fit_data = data
        if self.standardize:
            shift = float(np.mean(data))
            spread = float(np.std(data))
            if spread <= 0:
                raise FitError(f"{self.name}: degenerate (constant) data")
            fit_data = (data - shift) / spread
        elif self.positive_support:
            # scale-normalize: positive-support MLEs (notably Burr) overflow
            # or stall on data far from unit scale; dividing by the median
            # is loss-free since loc is pinned at 0 anyway
            spread = float(np.median(data))
            if spread <= 0:
                raise FitError(f"{self.name}: degenerate (zero-median) data")
            fit_data = data / spread
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")

            def _ll(params: Tuple) -> float:
                with np.errstate(divide="ignore", invalid="ignore"):
                    return float(np.sum(self.scipy_dist.logpdf(fit_data, *params)))

            # Candidate parameter sets: scipy's optimizer sometimes walks
            # away from a good start, and a moment-based start sometimes
            # pins the support too tightly (a single sample outside a
            # bounded support makes the likelihood -inf) — evaluate every
            # candidate and keep the best finite one.
            candidates: List[Tuple] = []
            guess: Optional[Tuple] = None
            if self.initial_guess is not None:
                try:
                    guess = tuple(float(g) for g in self.initial_guess(fit_data))
                    candidates.append(guess)
                except Exception:
                    guess = None
            if guess is not None:
                try:
                    *shape_guess, loc_guess, scale_guess = guess
                    candidates.append(tuple(self.scipy_dist.fit(
                        fit_data, *shape_guess, loc=loc_guess,
                        scale=scale_guess, **self.fit_kwargs)))
                except Exception:
                    pass
            try:
                candidates.append(tuple(self.scipy_dist.fit(
                    fit_data, **self.fit_kwargs)))
            except Exception as exc:
                if not candidates:
                    raise FitError(f"{self.name}: fit failed: {exc}") from exc
            scored = [(params, _ll(params)) for params in candidates]
            scored = [(p, ll) for p, ll in scored if np.isfinite(ll)]
            if not scored:
                raise FitError(f"{self.name}: degenerate likelihood")
            scipy_params = max(scored, key=lambda pl: pl[1])[0]
        if self.standardize or self.positive_support:
            *shapes, loc, scale = scipy_params
            scipy_params = (*shapes, loc * spread + shift, scale * spread)
        if not all(np.isfinite(scipy_params)):
            raise FitError(f"{self.name}: non-finite fitted parameters")
        params = self._from_scipy(tuple(float(p) for p in scipy_params))
        fitted = self.make(*params)
        ll = fitted.loglik(data)
        if not np.isfinite(ll):
            raise FitError(f"{self.name}: degenerate likelihood")
        return fitted

    def __repr__(self) -> str:
        return f"<Family {self.name}>"


def _identity_shapes(n_shapes: int):
    """Converters for families whose paper params are (shapes..., scale)
    with loc pinned at 0."""

    def to_scipy(params):
        *shapes, scale = params
        return (*shapes, 0.0, scale)

    def from_scipy(scipy_params):
        *shapes, loc, scale = scipy_params
        return (*shapes, scale)

    return to_scipy, from_scipy


def _gev_lmoment_guess(data: np.ndarray) -> Tuple[float, float, float]:
    """Hosking's L-moment estimator for the GEV, in scipy (c, loc, scale).

    Probability-weighted moments give a closed-form estimate that is a
    reliable MLE starting point (and often a decent fit by itself).
    """
    from scipy.special import gamma as _gamma

    x = np.sort(np.asarray(data, dtype=float))
    n = x.size
    j = np.arange(1, n + 1, dtype=float)
    b0 = x.mean()
    b1 = float(np.sum((j - 1) / (n - 1) * x) / n)
    b2 = float(np.sum((j - 1) * (j - 2) / ((n - 1) * (n - 2)) * x) / n)
    l1 = b0
    l2 = 2 * b1 - b0
    l3 = 6 * b2 - 6 * b1 + b0
    if l2 <= 0:
        raise FitError("gev: non-positive second L-moment")
    t3 = l3 / l2
    c_aux = 2.0 / (3.0 + t3) - np.log(2.0) / np.log(3.0)
    kappa = 7.8590 * c_aux + 2.9554 * c_aux ** 2  # Hosking's kappa == scipy c
    if abs(kappa) < 1e-9:
        kappa = 1e-9
    g = _gamma(1.0 + kappa)
    alpha = l2 * kappa / ((1.0 - 2.0 ** (-kappa)) * g)
    xi = l1 - alpha * (1.0 - g) / kappa
    return (float(kappa), float(xi), float(alpha))


def _build_families() -> Dict[str, Family]:
    fams: Dict[str, Family] = {}

    def add(fam: Family) -> None:
        fams[fam.name] = fam

    # 1. Generalized Extreme Value — paper GEV(k, sigma, mu); scipy c = -k.
    # Subnormal |k| is snapped to the exact Gumbel limit: scipy's c != 0
    # branch computes expm1(c*v)/c, which loses all precision (ppf
    # collapses to loc) once c*v underflows below the normal float range.
    add(Family(
        "gev", "GEV", ("k", "sigma", "mu"), stats.genextreme,
        to_scipy=lambda p: (-p[0] if abs(p[0]) >= np.finfo(float).tiny
                            else 0.0, p[2], p[1]),
        from_scipy=lambda s: (-s[0], s[2], s[1]),
        standardize=True,
        initial_guess=_gev_lmoment_guess,
    ))

    # 2. Burr (Type XII) — paper Burr(alpha, c, k); scipy burr12(c, d=k, scale=alpha).
    add(Family(
        "burr", "Burr", ("alpha", "c", "k"), stats.burr12,
        to_scipy=lambda p: (p[1], p[2], 0.0, p[0]),
        from_scipy=lambda s: (s[3], s[0], s[1]),
        fit_kwargs={"floc": 0.0},
        positive_support=True,
    ))

    # 3. Birnbaum-Saunders — paper BS(beta, gamma); scipy fatiguelife(c=gamma, scale=beta).
    add(Family(
        "birnbaum-saunders", "BS", ("beta", "gamma"), stats.fatiguelife,
        to_scipy=lambda p: (p[1], 0.0, p[0]),
        from_scipy=lambda s: (s[2], s[0]),
        fit_kwargs={"floc": 0.0},
        positive_support=True,
    ))

    # 4. Weibull — paper Weibull(lambda, k); scipy weibull_min(c=k, scale=lambda).
    add(Family(
        "weibull", "Weibull", ("lambda", "k"), stats.weibull_min,
        to_scipy=lambda p: (p[1], 0.0, p[0]),
        from_scipy=lambda s: (s[2], s[0]),
        fit_kwargs={"floc": 0.0},
        positive_support=True,
    ))

    # 5. Log-normal — Lognormal(mu, sigma) of the underlying normal.
    add(Family(
        "lognormal", "Lognormal", ("mu", "sigma"), stats.lognorm,
        to_scipy=lambda p: (p[1], 0.0, np.exp(p[0])),
        from_scipy=lambda s: (np.log(s[2]), s[0]),
        fit_kwargs={"floc": 0.0},
        positive_support=True,
    ))

    # 6. Normal(mu, sigma).
    add(Family(
        "normal", "Normal", ("mu", "sigma"), stats.norm,
        to_scipy=lambda p: (p[0], p[1]),
        from_scipy=lambda s: (s[0], s[1]),
        standardize=True,
    ))

    # 7. Exponential(mu) — mean parameterization (MATLAB expfit).
    add(Family(
        "exponential", "Exponential", ("mu",), stats.expon,
        to_scipy=lambda p: (0.0, p[0]),
        from_scipy=lambda s: (s[1],),
        fit_kwargs={"floc": 0.0},
        positive_support=True,
    ))

    # 8. Gamma(a, b) — shape/scale.
    add(Family(
        "gamma", "Gamma", ("a", "b"), stats.gamma,
        to_scipy=lambda p: (p[0], 0.0, p[1]),
        from_scipy=lambda s: (s[0], s[2]),
        fit_kwargs={"floc": 0.0},
        positive_support=True,
    ))

    # 9. Rayleigh(b).
    add(Family(
        "rayleigh", "Rayleigh", ("b",), stats.rayleigh,
        to_scipy=lambda p: (0.0, p[0]),
        from_scipy=lambda s: (s[1],),
        fit_kwargs={"floc": 0.0},
        positive_support=True,
    ))

    # 10. Generalized Pareto(k, sigma) with threshold 0 (MATLAB gpfit).
    add(Family(
        "pareto", "GenPareto", ("k", "sigma"), stats.genpareto,
        to_scipy=lambda p: (p[0], 0.0, p[1]),
        from_scipy=lambda s: (s[0], s[2]),
        fit_kwargs={"floc": 0.0},
        positive_support=True,
    ))

    # 11. Logistic(mu, s).
    add(Family(
        "logistic", "Logistic", ("mu", "s"), stats.logistic,
        to_scipy=lambda p: (p[0], p[1]),
        from_scipy=lambda s: (s[0], s[1]),
        standardize=True,
    ))

    # 12. Log-logistic(mu, sigma) — MATLAB parameterization of log(x);
    #     scipy fisk(c = 1/sigma, scale = exp(mu)).
    add(Family(
        "loglogistic", "Loglogistic", ("mu", "sigma"), stats.fisk,
        to_scipy=lambda p: (1.0 / p[1], 0.0, np.exp(p[0])),
        from_scipy=lambda s: (np.log(s[2]), 1.0 / s[0]),
        fit_kwargs={"floc": 0.0},
        positive_support=True,
    ))

    # 13. Nakagami(mu, omega); scipy nakagami(nu=mu, scale=sqrt(omega)).
    add(Family(
        "nakagami", "Nakagami", ("mu", "omega"), stats.nakagami,
        to_scipy=lambda p: (p[0], 0.0, np.sqrt(p[1])),
        from_scipy=lambda s: (s[0], s[2] ** 2),
        fit_kwargs={"floc": 0.0},
        positive_support=True,
    ))

    # 14. Inverse Gaussian(mu, lambda); scipy invgauss(mu=mu/lambda, scale=lambda).
    add(Family(
        "inverse-gaussian", "InvGaussian", ("mu", "lambda"), stats.invgauss,
        to_scipy=lambda p: (p[0] / p[1], 0.0, p[1]),
        from_scipy=lambda s: (s[0] * s[2], s[2]),
        fit_kwargs={"floc": 0.0},
        positive_support=True,
    ))

    # 15. Extreme Value (MATLAB 'ev' = Gumbel for minima): gumbel_l(mu, sigma).
    add(Family(
        "extreme-value", "ExtremeValue", ("mu", "sigma"), stats.gumbel_l,
        to_scipy=lambda p: (p[0], p[1]),
        from_scipy=lambda s: (s[0], s[1]),
        standardize=True,
    ))

    # 16. Half-normal(sigma).
    add(Family(
        "half-normal", "HalfNormal", ("sigma",), stats.halfnorm,
        to_scipy=lambda p: (0.0, p[0]),
        from_scipy=lambda s: (s[1],),
        fit_kwargs={"floc": 0.0},
        positive_support=True,
    ))

    # 17. Rician(s, sigma); scipy rice(b=s/sigma, scale=sigma).
    add(Family(
        "rician", "Rician", ("s", "sigma"), stats.rice,
        to_scipy=lambda p: (p[0] / p[1], 0.0, p[1]),
        from_scipy=lambda s: (s[0] * s[2], s[2]),
        fit_kwargs={"floc": 0.0},
        positive_support=True,
    ))

    # 18. t location-scale(mu, sigma, nu).
    add(Family(
        "t-location-scale", "tLocationScale", ("mu", "sigma", "nu"), stats.t,
        to_scipy=lambda p: (p[2], p[0], p[1]),
        from_scipy=lambda s: (s[1], s[2], s[0]),
        standardize=True,
    ))

    return fams


FAMILIES: Dict[str, Family] = _build_families()


def get_family(name: str) -> Family:
    try:
        return FAMILIES[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown distribution family {name!r}; available: {sorted(FAMILIES)}") from None
