"""Statistical workload modeling substrate (paper Section IV-1/2/3):
traces, the 18-family distribution zoo, BIC/KS fitting, trace analysis,
composite (phase-weighted) distributions, synthetic generation, and the
2012-national-grid reference model."""

from .analysis import (
    CleaningReport,
    UserCategories,
    autocorrelation,
    categorize_users,
    clean_trace,
    detect_periodicity,
    detect_phases,
)
from .composite import CompositeDistribution
from .distributions import FAMILIES, Family, FitError, FittedDistribution, get_family
from .fitting import FitResult, best_fit, fit_all, fit_family, ks_statistic, whole_second_median
from .generator import (
    ArrivalModel,
    BatchModel,
    DurationModel,
    SyntheticWorkloadGenerator,
    TruncatedICDFSampler,
    UserWorkloadModel,
    add_pollution,
    allocate_counts,
    compress_to_span,
    scale_trace_load,
)
from .reference import (
    BURSTY_JOB_SHARES,
    BURSTY_USAGE_SHARES,
    CATEGORIES,
    GRID_IDENTITIES,
    JOB_SHARES,
    PAPER_TABLE2,
    PAPER_TABLE3,
    USAGE_SHARES,
    U65_PHASES,
    U65PhaseSpec,
    YEAR,
    arrival_distribution,
    build_production_trace,
    build_testbed_trace,
    duration_distribution,
    generate_reference_trace,
    user_models,
)
from .swf import read_swf, write_swf
from .trace import Trace, TraceJob
from .validation import TraceComparison, UserComparison, compare_traces

__all__ = [
    "CleaningReport", "UserCategories", "autocorrelation", "categorize_users",
    "clean_trace", "detect_periodicity", "detect_phases",
    "CompositeDistribution",
    "FAMILIES", "Family", "FitError", "FittedDistribution", "get_family",
    "FitResult", "best_fit", "fit_all", "fit_family", "ks_statistic",
    "whole_second_median",
    "ArrivalModel", "BatchModel", "DurationModel", "SyntheticWorkloadGenerator",
    "TruncatedICDFSampler", "UserWorkloadModel", "add_pollution",
    "allocate_counts", "compress_to_span", "scale_trace_load",
    "BURSTY_JOB_SHARES", "BURSTY_USAGE_SHARES", "CATEGORIES", "GRID_IDENTITIES",
    "JOB_SHARES", "PAPER_TABLE2", "PAPER_TABLE3", "USAGE_SHARES",
    "U65_PHASES", "U65PhaseSpec", "YEAR",
    "arrival_distribution", "build_production_trace", "build_testbed_trace",
    "duration_distribution", "generate_reference_trace", "user_models",
    "read_swf", "write_swf",
    "Trace", "TraceJob",
    "TraceComparison", "UserComparison", "compare_traces",
]
