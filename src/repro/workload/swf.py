"""Standard Workload Format (SWF) import/export.

The paper's modeling methodology follows Feitelson's workload-modeling
guidelines, and the Parallel Workloads Archive distributes traces in SWF —
one job per line with 18 whitespace-separated fields, ``;`` header
comments.  Supporting SWF lets the pipeline ingest real archive traces (or
publish synthetic ones) without conversion scripts.

Field mapping (SWF index -> our model):

=====  =======================  =========================================
field  SWF meaning              mapping
=====  =======================  =========================================
1      job number               ``TraceJob.job_id``
2      submit time (s)          ``TraceJob.submit``
4      run time (s)             ``TraceJob.duration`` (``-1`` -> 0)
5      allocated processors     ``TraceJob.cores`` (``-1`` -> 1)
11     status                   0/5 (failed/cancelled) jobs keep duration
                                0, which the cleaning stage strips
12     user id                  ``TraceJob.user`` (``user<N>``)
=====  =======================  =========================================

Unknown SWF values are ``-1``; all other fields are emitted as ``-1`` on
export.  Round-tripping preserves job identity, arrival, duration, core
count, and user attribution — everything the modeling pipeline consumes.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional

from .trace import Trace, TraceJob

__all__ = ["read_swf", "write_swf"]

#: SWF status codes that indicate the job did not run to completion.
_FAILED_STATUSES = {0, 5}


def read_swf(path, user_prefix: str = "user",
             treat_failed_as_zero_duration: bool = True) -> Trace:
    """Read an SWF file into a :class:`Trace`.

    ``user_prefix`` names users as ``<prefix><uid>``.  With
    ``treat_failed_as_zero_duration`` (default), jobs with SWF status 0 or
    5 get duration 0 so the paper's cleaning stage removes them as
    cancelled/failed outliers.
    """
    jobs: List[TraceJob] = []
    for lineno, raw in enumerate(Path(path).read_text().splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith(";"):
            continue
        fields = line.split()
        if len(fields) < 18:
            raise ValueError(
                f"{path}:{lineno}: SWF line has {len(fields)} fields, expected 18")
        try:
            job_id = int(fields[0])
            submit = float(fields[1])
            run_time = float(fields[3])
            procs = int(float(fields[4]))
            status = int(float(fields[10]))
            uid = int(float(fields[11]))
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: malformed SWF fields") from exc
        duration = max(0.0, run_time)
        if treat_failed_as_zero_duration and status in _FAILED_STATUSES:
            duration = 0.0
        jobs.append(TraceJob(
            user=f"{user_prefix}{uid}" if uid >= 0 else f"{user_prefix}_unknown",
            submit=submit,
            duration=duration,
            cores=max(1, procs),
            job_id=job_id,
        ))
    return Trace(jobs)


def write_swf(trace: Trace, path, comment: Optional[str] = None) -> None:
    """Write a trace as SWF.

    Users are assigned numeric ids in first-seen order; the mapping is
    recorded in header comments so the file is self-describing.
    """
    user_ids: Dict[str, int] = {}
    for job in trace:
        user_ids.setdefault(job.user, len(user_ids) + 1)
    lines = [
        "; SWF export from the Aequus reproduction workload pipeline",
    ]
    if comment:
        lines.append(f"; {comment}")
    lines.append(f"; MaxJobs: {trace.n_jobs}")
    lines.append(f"; MaxRecords: {trace.n_jobs}")
    for user, uid in user_ids.items():
        lines.append(f"; UserID {uid}: {user}")
    for job in trace:
        status = 1 if job.duration > 0 else 0
        fields = [
            job.job_id,              # 1  job number
            f"{job.submit:.0f}",     # 2  submit time
            -1,                      # 3  wait time
            f"{job.duration:.0f}",   # 4  run time
            job.cores,               # 5  allocated processors
            -1,                      # 6  average CPU time used
            -1,                      # 7  used memory
            job.cores,               # 8  requested processors
            -1,                      # 9  requested time
            -1,                      # 10 requested memory
            status,                  # 11 status
            user_ids[job.user],      # 12 user id
            -1,                      # 13 group id
            -1,                      # 14 executable id
            -1,                      # 15 queue number
            -1,                      # 16 partition number
            -1,                      # 17 preceding job number
            -1,                      # 18 think time
        ]
        lines.append(" ".join(str(f) for f in fields))
    Path(path).write_text("\n".join(lines) + "\n")
