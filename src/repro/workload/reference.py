"""The 2012 Swedish-national-grid reference workload model.

The paper's statistical models are fitted to a proprietary accounting trace
we cannot obtain.  This module is the documented substitution (DESIGN.md
Section 2): a *generative* model seeded with everything the paper publishes
about that trace —

* the user mix: U65 with 65.25% of wall-clock usage / 81.03% of jobs,
  U30 30.49%/6.58%, U3 2.86%/9.47%, Uoth 1.40%/2.93% (Section IV-1);
* arrival structure: U65 in four ~3-month experiment phases fitted with
  GEV distributions, U30 Burr, U3 GEV (bursty, worst fit), Uoth GEV
  (Table II, Figure 5);
* duration (job size) distributions: U65 BS(1.76e4, 3.53), U30
  Weibull(5.49e4, 0.637), U3 Burr(2.07, 11.0, 0.02), Uoth BS(3.02e4, 7.91)
  (Table III) — durations concentrated in [0, 6e5] s with U30 heaviest
  tailed (Figure 7);
* second-scale submission clustering calibrated so that whole-second
  median inter-arrival times land near the published 2/1/0/13 s.

Where the published numbers are internally inconsistent (scanning damage in
the source), parameters are adjusted and flagged:

* Table II's location parameters print as 7.35e4 for *every* data set; in
  minutes that is day 51 of the year, plausible only for phase 1.  We keep
  the published GEV shapes and place the four U65 phase centers at days
  51/140/232/323 with widths of 10–15 days (consistent with Figure 5's
  quarterly bumps).
* U30's printed Burr(7.4e4, 8.6e-4, 0.08) is degenerate (c of 8.6e-4 puts
  essentially no mass anywhere); we substitute a Burr with a broad spread
  over the year.
* Table II/III's printed medians (e.g. a 1.70e8-second job duration — 5.4
  years) contradict the printed distributions; we use the distributions'
  own medians.

Generated traces exercise the full modeling pipeline: pollution (admin +
zero-duration jobs; 15% of jobs, 1.5% of usage) for the cleaning stage,
dominant-user structure for categorization, quarterly phases for phase
detection, and family-recoverable marginals for Tables II/III.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

import numpy as np

from .composite import CompositeDistribution
from .distributions import FAMILIES, FittedDistribution
from .generator import (
    ArrivalModel,
    BatchModel,
    DurationModel,
    SyntheticWorkloadGenerator,
    TruncatedICDFSampler,
    UserWorkloadModel,
    add_pollution,
    compress_to_span,
)
from .trace import Trace

__all__ = [
    "YEAR", "DAY", "CATEGORIES", "GRID_IDENTITIES",
    "USAGE_SHARES", "JOB_SHARES",
    "BURSTY_JOB_SHARES", "BURSTY_USAGE_SHARES",
    "PAPER_TABLE2", "PAPER_TABLE3",
    "U65PhaseSpec", "U65_PHASES",
    "arrival_distribution", "duration_distribution",
    "user_models", "generate_reference_trace", "build_testbed_trace",
    "build_production_trace",
]

DAY = 86400.0
YEAR = 365.0 * DAY

CATEGORIES = ["U65", "U30", "U3", "Uoth"]

#: Grid identities behind the category labels (the modeling collapses each
#: dominating "user" — really a research project — to one identity).
GRID_IDENTITIES: Dict[str, str] = {
    "U65": "/C=SE/O=SNIC/CN=U65",
    "U30": "/C=SE/O=SNIC/CN=U30",
    "U3": "/C=SE/O=SNIC/CN=U3",
    "Uoth": "/C=SE/O=SNIC/CN=Uoth",
}

#: Section IV-1: fraction of total wall-clock usage per user category.
USAGE_SHARES: Dict[str, float] = {
    "U65": 0.6525, "U30": 0.3049, "U3": 0.0286, "Uoth": 0.0140,
}

#: Section IV-1: fraction of submitted jobs per user category.
JOB_SHARES: Dict[str, float] = {
    "U65": 0.8103, "U30": 0.0658, "U3": 0.0947, "Uoth": 0.0293,
}

#: Section IV-A.5 (bursty test): "The fractions of submitted jobs per user
#: for this test are 45.5%, 6.5%, 45.5%, and 3% ... the corresponding
#: wall-clock time usage shares are 47%, 38.5%, 12%, and 2.5%."
BURSTY_JOB_SHARES: Dict[str, float] = {
    "U65": 0.455, "U30": 0.065, "U3": 0.455, "Uoth": 0.03,
}
BURSTY_USAGE_SHARES: Dict[str, float] = {
    "U65": 0.47, "U30": 0.385, "U3": 0.12, "Uoth": 0.025,
}

#: Paper Table II as published (arrival fits; medians in whole seconds).
PAPER_TABLE2 = {
    "U65 (p1)": {"median": 2, "family": "gev", "ks": 0.06},
    "U65 (p2)": {"median": 3, "family": "gev", "ks": 0.05},
    "U65 (p3)": {"median": 2, "family": "gev", "ks": 0.07},
    "U65 (p4)": {"median": 2, "family": "gev", "ks": 0.05},
    "U65": {"median": 2, "family": "composite", "ks": 0.02},
    "U30": {"median": 1, "family": "burr", "ks": 0.08},
    "U3": {"median": 0, "family": "gev", "ks": 0.15},
    "Uoth": {"median": 13, "family": "gev", "ks": 0.06},
}

#: Paper Table III as published (duration fits).
PAPER_TABLE3 = {
    "U65": {"family": "birnbaum-saunders", "params": (1.76e4, 3.53), "ks": 0.09},
    "U30": {"family": "weibull", "params": (5.49e4, 0.637), "ks": 0.04},
    "U3": {"family": "burr", "params": (2.07, 11.0, 0.02), "ks": 0.28},
    "Uoth": {"family": "birnbaum-saunders", "params": (3.02e4, 7.91), "ks": 0.13},
}


# ---------------------------------------------------------------------------
# arrival models
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class U65PhaseSpec:
    """One of U65's four experiment-cycle phases (Figure 5).

    ``weight`` is the fraction of U65's jobs in the phase (the pn_usage /
    total_usage factor of Equation 1); ``k`` is the published GEV shape;
    center and width position the phase within the year.
    """

    weight: float
    k: float
    center_day: float
    width_days: float

    def distribution(self, span: float = YEAR) -> FittedDistribution:
        scale = span / YEAR
        return FAMILIES["gev"].make(self.k, self.width_days * DAY * scale,
                                    self.center_day * DAY * scale)


#: Phase weights follow Figure 5's bump heights; shapes are the published
#: Table II values; widths are the published sigmas in half-day units
#: (19.5 -> 9.75 days etc.), centers at the quarterly cycle positions.
U65_PHASES: List[U65PhaseSpec] = [
    U65PhaseSpec(weight=0.28, k=-0.386, center_day=51.0, width_days=9.75),
    U65PhaseSpec(weight=0.31, k=-0.371, center_day=140.0, width_days=15.3),
    U65PhaseSpec(weight=0.23, k=-0.457, center_day=232.0, width_days=15.4),
    U65PhaseSpec(weight=0.18, k=-0.301, center_day=323.0, width_days=10.7),
]

#: Batch calibration: (mean batch size, mean intra-batch gap in seconds),
#: tuned so whole-second median inter-arrivals land near Table II's
#: published 2 / 1 / 0 / 13 s.
BATCH_CALIBRATION: Dict[str, BatchModel] = {
    "U65": BatchModel(mean_batch_size=40.0, mean_gap=3.0),
    "U30": BatchModel(mean_batch_size=10.0, mean_gap=1.8),
    "U3": BatchModel(mean_batch_size=20.0, mean_gap=0.5),
    "Uoth": BatchModel(mean_batch_size=4.0, mean_gap=14.0),
}


def arrival_distribution(user: str, span: float = YEAR):
    """The continuous arrival-time distribution over ``[0, span]``.

    U65 is the four-phase composite (Equation 1); the others are single
    families per Table II.
    """
    scale = span / YEAR
    if user == "U65":
        return CompositeDistribution(
            [(p.weight, p.distribution(span)) for p in U65_PHASES])
    if user == "U30":
        # substituted Burr (published parameters degenerate; see module doc);
        # chosen so <1% of the mass falls beyond the year boundary
        return FAMILIES["burr"].make(120.0 * DAY * scale, 3.5, 1.2)
    if user == "U3":
        # published shape k=0.195 (heavy right tail: the burst + stragglers)
        return FAMILIES["gev"].make(0.195, 15.0 * DAY * scale, 60.0 * DAY * scale)
    if user == "Uoth":
        # published shape k=0.148; sigma 56 half-days = 28 days
        return FAMILIES["gev"].make(0.148, 28.0 * DAY * scale, 170.0 * DAY * scale)
    raise KeyError(f"unknown user category {user!r}")


def duration_distribution(user: str) -> FittedDistribution:
    """Job-duration distribution per Table III (published parameters)."""
    spec = PAPER_TABLE3[user]
    return FAMILIES[spec["family"]].make(*spec["params"])


def user_models(span: float = YEAR,
                batching: bool = True,
                max_duration: float = 2.0e6,
                burst_user: Optional[str] = None,
                burst_start_fraction: float = 1.0 / 3.0,
                burst_width_fraction: float = 0.15) -> Dict[str, UserWorkloadModel]:
    """Per-category workload models over a time span.

    ``burst_user`` rebuilds that user's arrival model as a burst starting at
    ``burst_start_fraction`` of the span (the bursty test shifts U3's burst
    "to start after one third of the test run").
    """
    models: Dict[str, UserWorkloadModel] = {}
    for user in CATEGORIES:
        if user == burst_user:
            start = burst_start_fraction * span
            width = burst_width_fraction * span
            dist = FAMILIES["gev"].make(0.195, width / 3.0, start + width / 2.0)
            sampler = TruncatedICDFSampler(dist, start, span)
        else:
            dist = arrival_distribution(user, span)
            sampler = TruncatedICDFSampler(dist, 0.0, span)
        batch = BATCH_CALIBRATION[user] if batching else None
        models[user] = UserWorkloadModel(
            name=user,
            arrival=ArrivalModel(sampler, batching=batch),
            duration=DurationModel(duration_distribution(user),
                                   min_duration=1.0, max_duration=max_duration),
        )
    return models


# ---------------------------------------------------------------------------
# trace builders
# ---------------------------------------------------------------------------

def generate_reference_trace(n_jobs: int = 60_000,
                             seed: int = 0,
                             span: float = YEAR,
                             pollution: bool = True,
                             batching: bool = True,
                             mean_charge: float = 8.0e4) -> Trace:
    """The stand-in for the 2012 national accounting trace.

    Produces ``n_jobs`` *clean* jobs with the published job/usage shares
    (per-user duration scaling pins usage shares exactly), then optionally
    pollutes it with the admin/zero-duration noise the cleaning stage must
    strip.  ``mean_charge`` sets the average per-job core-seconds and hence
    the absolute system size (shares are what the pipeline consumes).
    """
    rng = np.random.default_rng(seed)
    generator = SyntheticWorkloadGenerator(
        models=user_models(span=span, batching=batching),
        job_shares=JOB_SHARES,
        n_jobs=n_jobs,
        usage_shares=USAGE_SHARES,
        total_charge=n_jobs * mean_charge,
    )
    trace = generator.generate(rng)
    if pollution:
        trace = add_pollution(trace, rng)
    return trace


def build_testbed_trace(n_jobs: int = 43_200,
                        span: float = 21_600.0,
                        total_cores: int = 240,
                        load: float = 0.95,
                        seed: int = 0,
                        bursty: bool = False,
                        job_shares: Optional[Mapping[str, float]] = None,
                        usage_shares: Optional[Mapping[str, float]] = None) -> Trace:
    """A test-bed input trace per Section IV-A.

    Defaults reproduce the paper's setup: 43,200 jobs over a six-hour test
    (120 jobs/minute sustained), 240 virtual hosts, total load 95% of the
    theoretical maximum.  ``bursty=True`` produces the Section IV-A.5
    variant: U3's submissions boosted to 45.5% of jobs (deducted from U65)
    and its burst shifted to start after one third of the run.
    """
    if bursty:
        job_shares = dict(job_shares or BURSTY_JOB_SHARES)
        usage_shares = dict(usage_shares or BURSTY_USAGE_SHARES)
        models = user_models(span=span, batching=False, burst_user="U3")
    else:
        job_shares = dict(job_shares or JOB_SHARES)
        usage_shares = dict(usage_shares or USAGE_SHARES)
        models = user_models(span=span, batching=False)
    rng = np.random.default_rng(seed)
    generator = SyntheticWorkloadGenerator(
        models=models,
        job_shares=job_shares,
        n_jobs=n_jobs,
        usage_shares=usage_shares,
        total_charge=load * total_cores * span,
    )
    trace = generator.generate(rng)
    # Arrival samples honor [0, span] already; durations were pinned by the
    # generator. Map user categories to grid identities for submission.
    return trace.relabel(GRID_IDENTITIES)


def build_production_trace(months: float = 3.0,
                           jobs_per_month: int = 40_000,
                           total_cores: int = 544,
                           load: float = 0.85,
                           seed: int = 0) -> Trace:
    """Production-scale single-cluster workload (paper Section IV intro).

    HPC2N: 68 dual-quad-core nodes (544 cores), about 40,000 jobs per month
    since the start of 2013.  Used by the production-stability experiment.
    """
    span = months * 30.0 * DAY
    n_jobs = int(round(months * jobs_per_month))
    rng = np.random.default_rng(seed)
    generator = SyntheticWorkloadGenerator(
        models=user_models(span=span, batching=False),
        job_shares=JOB_SHARES,
        n_jobs=n_jobs,
        usage_shares=USAGE_SHARES,
        total_charge=load * total_cores * span,
    )
    return generator.generate(rng).relabel(GRID_IDENTITIES)
