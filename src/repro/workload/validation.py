"""Synthetic-vs-original trace validation.

The point of the paper's statistical modeling is "to generate diverse
workloads that still retain key statistical properties of the original
trace" (Section IV-1).  This module quantifies that retention for any pair
of traces — typically the reference ("original") trace and a trace
synthesized from models fitted to it:

* per-user job-share and usage-share deltas,
* two-sample Kolmogorov–Smirnov distances between the per-user arrival-time
  and duration marginals,
* inter-arrival median agreement (whole seconds, the paper's metric),
* burstiness: peak-to-mean submission-rate ratio.

A :class:`TraceComparison` aggregates these into a compact report so tests
and examples can assert "key properties retained" with one object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np
from scipy import stats as _scipy_stats

from .fitting import whole_second_median
from .trace import Trace

__all__ = ["UserComparison", "TraceComparison", "compare_traces"]


def _ks_2samp(a: np.ndarray, b: np.ndarray) -> float:
    if a.size < 2 or b.size < 2:
        return float("nan")
    return float(_scipy_stats.ks_2samp(a, b).statistic)


@dataclass
class UserComparison:
    """Per-user marginal agreement between two traces."""

    user: str
    job_share_delta: float
    usage_share_delta: float
    arrival_ks: float
    duration_ks: float
    median_ia_original: float
    median_ia_synthetic: float

    def row(self) -> str:
        return (f"{self.user:<6} d(job share)={self.job_share_delta:+.4f}  "
                f"d(usage share)={self.usage_share_delta:+.4f}  "
                f"KS(arrival)={self.arrival_ks:.3f}  "
                f"KS(duration)={self.duration_ks:.3f}  "
                f"median ia {self.median_ia_original:.0f}s vs "
                f"{self.median_ia_synthetic:.0f}s")


@dataclass
class TraceComparison:
    """Aggregate retention report for a synthetic trace."""

    users: List[UserComparison]
    peak_to_mean_original: float
    peak_to_mean_synthetic: float

    def max_share_delta(self) -> float:
        deltas = [abs(u.job_share_delta) for u in self.users]
        deltas += [abs(u.usage_share_delta) for u in self.users]
        return max(deltas) if deltas else 0.0

    def worst_arrival_ks(self) -> float:
        values = [u.arrival_ks for u in self.users
                  if not np.isnan(u.arrival_ks)]
        return max(values) if values else float("nan")

    def worst_duration_ks(self) -> float:
        values = [u.duration_ks for u in self.users
                  if not np.isnan(u.duration_ks)]
        return max(values) if values else float("nan")

    def retained(self, share_tolerance: float = 0.05,
                 ks_tolerance: float = 0.2) -> bool:
        """One-line verdict: are the key statistical properties retained?"""
        return (self.max_share_delta() <= share_tolerance
                and self.worst_arrival_ks() <= ks_tolerance
                and self.worst_duration_ks() <= ks_tolerance)

    def rows(self) -> List[str]:
        rows = [u.row() for u in self.users]
        rows.append(f"peak/mean submission rate: "
                    f"{self.peak_to_mean_original:.1f} (original) vs "
                    f"{self.peak_to_mean_synthetic:.1f} (synthetic)")
        rows.append(f"retained: {self.retained()}")
        return rows


def _peak_to_mean(trace: Trace, window: float) -> float:
    if trace.n_jobs == 0 or trace.span <= 0:
        return 1.0
    mean_rate = trace.n_jobs / max(1.0, trace.span / window)
    peak = trace.peak_submission_rate(window)
    return peak / mean_rate if mean_rate > 0 else 1.0


def compare_traces(original: Trace, synthetic: Trace,
                   users: Optional[List[str]] = None,
                   rate_window: float = 60.0,
                   normalize_time: bool = True) -> TraceComparison:
    """Compare two traces' per-user marginals and burstiness.

    ``normalize_time`` maps both traces' arrival times onto [0, 1] before
    the KS comparison so traces of different spans (e.g. a year-long
    original vs a six-hour test-bed projection) compare by *shape*.
    """
    users = users if users is not None else sorted(
        set(original.users()) & set(synthetic.users()))
    o_jobs, s_jobs = original.job_shares(), synthetic.job_shares()
    o_usage, s_usage = original.usage_shares(), synthetic.usage_shares()

    def arrival_marginal(trace: Trace, user: str) -> np.ndarray:
        times = trace.arrival_times(user)
        if normalize_time and trace.span > 0:
            times = (times - trace.start) / trace.span
        return times

    def duration_marginal(trace: Trace, user: str) -> np.ndarray:
        durations = trace.durations(user)
        if normalize_time:
            total = trace.total_usage()
            if total > 0:
                durations = durations / (total / max(1, trace.n_jobs))
        return durations

    comparisons = []
    for user in users:
        comparisons.append(UserComparison(
            user=user,
            job_share_delta=s_jobs.get(user, 0.0) - o_jobs.get(user, 0.0),
            usage_share_delta=s_usage.get(user, 0.0) - o_usage.get(user, 0.0),
            arrival_ks=_ks_2samp(arrival_marginal(original, user),
                                 arrival_marginal(synthetic, user)),
            duration_ks=_ks_2samp(duration_marginal(original, user),
                                  duration_marginal(synthetic, user)),
            median_ia_original=whole_second_median(
                original.inter_arrival_times(user)),
            median_ia_synthetic=whole_second_median(
                synthetic.inter_arrival_times(user)),
        ))
    return TraceComparison(
        users=comparisons,
        peak_to_mean_original=_peak_to_mean(original, rate_window),
        peak_to_mean_synthetic=_peak_to_mean(synthetic, rate_window),
    )
