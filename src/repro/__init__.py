"""repro — reproduction of "Integration and Evaluation of Decentralized
Fairshare Prioritization (Aequus)" (Espling, Ostberg, Elmroth, IPPS 2014).

Subpackages
-----------
``repro.core``
    Policy trees, usage accounting, decay, fairshare trees, fairshare
    vectors, and scalar projections — the paper's contribution.
``repro.services``
    The decentralized service stack (USS, UMS, PDS, FCS, IRS) and the
    simulated network between installations.
``repro.client``
    ``libaequus``, the client library linked into resource managers.
``repro.rms``
    SLURM-like and Maui-like local resource managers with the Aequus
    integration seams.
``repro.sim``
    Discrete-event simulation engine, metrics, and the grid layer.
``repro.workload``
    Statistical workload modeling (distribution fitting, BIC selection,
    synthetic trace generation) and the 2012-national-grid reference model.
``repro.experiments``
    Drivers regenerating every table and figure of the paper's evaluation.
"""

from . import core

__version__ = "1.0.0"

__all__ = ["core", "__version__"]
