"""Command-line interface for the Aequus reproduction.

Subcommands
-----------
``generate-trace``
    Synthesize a workload trace from the national-grid reference model and
    write it as a TSV file.
``fit``
    Run the modeling pipeline (clean, categorize, fit, select by BIC) on a
    trace file and print Table II/III-style rows.
``run``
    Run an evaluation scenario (baseline / non-optimal / partial / bursty)
    on the simulated national test bed and print the summary.
``probe-projections``
    Print the probed Table I property matrix.

Examples::

    python -m repro.cli generate-trace --jobs 20000 --out trace.tsv
    python -m repro.cli fit trace.tsv
    python -m repro.cli run baseline --jobs 6000 --span 3600 --sites 2
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Aequus decentralized fairshare prioritization (reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate-trace",
                         help="synthesize a reference workload trace")
    gen.add_argument("--jobs", type=int, default=20_000,
                     help="number of clean jobs (default 20000)")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--testbed", action="store_true",
                     help="generate a test-bed trace (compressed span, "
                          "load-scaled) instead of a year-long trace")
    gen.add_argument("--span", type=float, default=21_600.0,
                     help="test-bed span in seconds (with --testbed)")
    gen.add_argument("--cores", type=int, default=240,
                     help="test-bed total cores (with --testbed)")
    gen.add_argument("--bursty", action="store_true",
                     help="bursty variant (with --testbed)")
    gen.add_argument("--no-pollution", action="store_true",
                     help="omit admin/zero-duration noise (year trace)")
    gen.add_argument("--out", required=True, help="output TSV path")

    fit = sub.add_parser("fit", help="fit workload models to a trace file")
    fit.add_argument("trace", help="trace TSV (see generate-trace)")
    fit.add_argument("--subsample", type=int, default=5000)
    fit.add_argument("--seed", type=int, default=0)

    run = sub.add_parser("run", help="run an evaluation scenario")
    run.add_argument("scenario",
                     choices=["baseline", "non-optimal", "partial", "bursty"])
    run.add_argument("--jobs", type=int, default=6000)
    run.add_argument("--span", type=float, default=3600.0)
    run.add_argument("--sites", type=int, default=2)
    run.add_argument("--hosts", type=int, default=20)
    run.add_argument("--seed", type=int, default=0)

    sub.add_parser("probe-projections",
                   help="print the probed Table I property matrix")
    return parser


def _cmd_generate(args) -> int:
    from .workload.reference import build_testbed_trace, generate_reference_trace

    if args.testbed:
        trace = build_testbed_trace(n_jobs=args.jobs, span=args.span,
                                    total_cores=args.cores, seed=args.seed,
                                    bursty=args.bursty)
    else:
        trace = generate_reference_trace(n_jobs=args.jobs, seed=args.seed,
                                         pollution=not args.no_pollution)
    trace.save(args.out)
    print(f"wrote {trace.n_jobs} jobs ({len(trace.users())} users, "
          f"span {trace.span:.0f}s) to {args.out}")
    return 0


def _cmd_fit(args) -> int:
    from .workload.analysis import categorize_users, clean_trace, detect_phases
    from .workload.fitting import best_fit, whole_second_median
    from .workload.trace import Trace

    trace = Trace.load(args.trace)
    clean, report = clean_trace(trace)
    print(f"cleaned: removed {report.removed_job_fraction:.1%} of jobs, "
          f"{report.removed_usage_fraction:.2%} of usage")
    cats = categorize_users(clean)
    labeled = cats.relabel(clean)
    print("user categories:")
    for label in cats.category_names():
        print(f"  {label:<6} usage {cats.usage_shares.get(label, 0.0):.2%}  "
              f"jobs {cats.job_shares.get(label, 0.0):.2%}")
    import numpy as np
    rng = np.random.default_rng(args.seed)
    print("\narrival fits:")
    for user in cats.category_names():
        times = labeled.arrival_times(user)
        if times.size < 16:
            print(f"  {user:<6} (too few jobs to fit)")
            continue
        fit = best_fit(times, subsample=args.subsample, rng=rng)
        median = whole_second_median(labeled.inter_arrival_times(user))
        print(f"  {user:<6} median={median:.0f}s  {fit.fitted.describe()}  "
              f"KS={fit.ks:.2f}")
    print("\nduration fits:")
    for user in cats.category_names():
        durations = labeled.durations(user)
        if durations.size < 16:
            print(f"  {user:<6} (too few jobs to fit)")
            continue
        fit = best_fit(durations, subsample=args.subsample, rng=rng)
        print(f"  {user:<6} median={whole_second_median(durations):.0f}s  "
              f"{fit.fitted.describe()}  KS={fit.ks:.2f}")
    return 0


def _cmd_run(args) -> int:
    from .experiments import scenarios

    kwargs = dict(n_jobs=args.jobs, span=args.span, n_sites=args.sites,
                  hosts_per_site=args.hosts, seed=args.seed)
    if args.scenario == "baseline":
        result = scenarios.baseline(**kwargs)
    elif args.scenario == "non-optimal":
        result = scenarios.non_optimal_policy(**kwargs)
    elif args.scenario == "bursty":
        result = scenarios.bursty(**kwargs)
    else:
        kwargs["n_sites"] = max(4, kwargs["n_sites"])
        outcome = scenarios.partial_participation(**kwargs)
        result = outcome.result
        print(f"read-only site: {outcome.read_only_site}; "
              f"local-only site: {outcome.local_only_site}")
    for row in result.summary_rows():
        print(row)
    return 0


def _cmd_probe(_args) -> int:
    from .experiments.projections import PAPER_TABLE1, regenerate_table1

    for row in regenerate_table1():
        match = "matches paper" if row.properties == PAPER_TABLE1[row.name] \
            else "DIFFERS from paper"
        print(f"{row.render()}   [{match}]")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "generate-trace": _cmd_generate,
        "fit": _cmd_fit,
        "run": _cmd_run,
        "probe-projections": _cmd_probe,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
