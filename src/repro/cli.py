"""Command-line interface for the Aequus reproduction.

Subcommands
-----------
``generate-trace``
    Synthesize a workload trace from the national-grid reference model and
    write it as a TSV file.
``fit``
    Run the modeling pipeline (clean, categorize, fit, select by BIC) on a
    trace file and print Table II/III-style rows.
``run``
    Run an evaluation scenario (baseline / non-optimal / partial / bursty)
    on the simulated national test bed and print the summary.
``probe-projections``
    Print the probed Table I property matrix.
``serve``
    Boot aequusd: a demo site stack ticked in wall-clock time behind the
    TCP serve plane.
``grid``
    Boot a real multi-daemon grid on loopback (N aequusd subprocesses
    exchanging usage over TCP through fault proxies), converge it, run an
    optional fault demo, and print a staleness/wire summary.
``grid-node``
    One grid daemon (normally spawned by ``grid`` or the
    :class:`~repro.grid.harness.GridHarness`): a site stack whose USS
    speaks TCP to its peers, fronted by the serve plane.
``query``
    One-shot client operations against a running aequusd
    (fairshare / vector / resolve / report / ping / info / batch).
``probe``
    Health probe: protocol version, snapshot epoch and age; exits
    non-zero when the snapshot is stale (older than ``--stale-factor``
    times the server's refresh interval).
``top``
    Live per-site fleet table (QPS, staleness percentiles, exchange
    frames/s, reconnects, compile kinds) rendered from a
    :class:`~repro.obs.collector.FleetCollector` scraping every
    ``--target`` daemon.
``metrics``
    Scrape a running aequusd's Prometheus text exposition (the METRICS
    op) to stdout — pipe into a textfile collector or curl-style checks.
``report``
    Render a markdown fairness report, either live from a running aequusd
    (INFO + METRICS: current usage horizons, lifetime staleness
    distribution), fleet-wide with ``--grid --target site=host:port``
    (collector-derived series), or offline from a recorder JSONL file
    written by ``serve --record`` or :meth:`repro.obs.SeriesStore.to_jsonl`.

Examples::

    python -m repro.cli generate-trace --jobs 20000 --out trace.tsv
    python -m repro.cli fit trace.tsv
    python -m repro.cli run baseline --jobs 6000 --span 3600 --sites 2
    python -m repro.cli serve --users 1000 --port 4730
    python -m repro.cli grid --sites 3 --users 30 --duration 10
    python -m repro.cli query fairshare u17 --port 4730
    python -m repro.cli probe --port 4730 --max-staleness 120
    python -m repro.cli probe --port 4730 --json
    python -m repro.cli top --target s0=127.0.0.1:4730 --once
    python -m repro.cli metrics --port 4730
    python -m repro.cli report --grid --target s0=127.0.0.1:4730
    python -m repro.cli report --port 4730
    python -m repro.cli report --from fairness.jsonl --out report.md
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Aequus decentralized fairshare prioritization (reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate-trace",
                         help="synthesize a reference workload trace")
    gen.add_argument("--jobs", type=int, default=20_000,
                     help="number of clean jobs (default 20000)")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--testbed", action="store_true",
                     help="generate a test-bed trace (compressed span, "
                          "load-scaled) instead of a year-long trace")
    gen.add_argument("--span", type=float, default=21_600.0,
                     help="test-bed span in seconds (with --testbed)")
    gen.add_argument("--cores", type=int, default=240,
                     help="test-bed total cores (with --testbed)")
    gen.add_argument("--bursty", action="store_true",
                     help="bursty variant (with --testbed)")
    gen.add_argument("--no-pollution", action="store_true",
                     help="omit admin/zero-duration noise (year trace)")
    gen.add_argument("--out", required=True, help="output TSV path")

    fit = sub.add_parser("fit", help="fit workload models to a trace file")
    fit.add_argument("trace", help="trace TSV (see generate-trace)")
    fit.add_argument("--subsample", type=int, default=5000)
    fit.add_argument("--seed", type=int, default=0)

    run = sub.add_parser("run", help="run an evaluation scenario")
    run.add_argument("scenario",
                     choices=["baseline", "non-optimal", "partial", "bursty"])
    run.add_argument("--jobs", type=int, default=6000)
    run.add_argument("--span", type=float, default=3600.0)
    run.add_argument("--sites", type=int, default=2)
    run.add_argument("--hosts", type=int, default=20)
    run.add_argument("--seed", type=int, default=0)

    sub.add_parser("probe-projections",
                   help="print the probed Table I property matrix")

    serve = sub.add_parser("serve", help="run aequusd (the TCP serve plane)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=4730)
    serve.add_argument("--users", type=int, default=1000,
                       help="demo-site size (VO/project/user hierarchy)")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--refresh-interval", type=float, default=30.0,
                       help="FCS refresh (= snapshot publish) interval")
    serve.add_argument("--workers", type=int, default=0, metavar="N",
                       help="sharded mode: fork N per-core worker processes "
                            "serving shared-memory snapshots over "
                            "SO_REUSEPORT sockets (0 = in-process server)")
    serve.add_argument("--time-factor", type=float, default=1.0,
                       help="virtual seconds advanced per wall second")
    serve.add_argument("--json-log", default=None, metavar="PATH",
                       help="append one structured JSON line per tick / "
                            "refresh / exchange to PATH ('-' for stderr)")
    serve.add_argument("--record", default=None, metavar="PATH",
                       help="sample fairness-quality series while serving "
                            "and export them as JSONL to PATH on shutdown "
                            "(render with 'report --from PATH')")
    serve.add_argument("--record-interval", type=float, default=None,
                       help="recorder sampling interval in virtual seconds "
                            "(default: the FCS refresh interval)")

    grid = sub.add_parser(
        "grid", help="boot a real multi-daemon grid on loopback")
    grid.add_argument("--sites", type=int, default=3)
    grid.add_argument("--users", type=int, default=30)
    grid.add_argument("--seed", type=int, default=0)
    grid.add_argument("--duration", type=float, default=10.0,
                      help="seconds to sample staleness once converged")
    grid.add_argument("--exchange-interval", type=float, default=0.5)
    grid.add_argument("--refresh-interval", type=float, default=0.5)
    grid.add_argument("--latency", type=float, default=0.0,
                      help="injected one-way link latency (seconds)")
    grid.add_argument("--jitter", type=float, default=0.0)
    grid.add_argument("--no-proxies", action="store_true",
                      help="wire daemons directly (no fault plane)")
    grid.add_argument("--demo-faults", action="store_true",
                      help="also partition a link and kill/restart a "
                           "daemon, asserting the grid recovers")
    grid.add_argument("--workdir", default=None,
                      help="keep policy + per-node logs here "
                           "(default: a temp dir)")

    node = sub.add_parser(
        "grid-node", help="run one grid daemon (spawned by 'grid')")
    node.add_argument("--site", required=True)
    node.add_argument("--policy", required=True,
                      help="shared policy file ('path = weight' lines)")
    node.add_argument("--listen-host", default="127.0.0.1",
                      help="USS exchange listener address")
    node.add_argument("--listen-port", type=int, default=0)
    node.add_argument("--host", default="127.0.0.1",
                      help="serve-plane address")
    node.add_argument("--port", type=int, default=0)
    node.add_argument("--peer", action="append", default=[],
                      metavar="SITE=HOST:PORT",
                      help="peer USS address (repeatable)")
    node.add_argument("--site-index", type=int, default=0)
    node.add_argument("--site-count", type=int, default=1)
    node.add_argument("--usage-jobs", type=int, default=0,
                      help="seeded local jobs for this node's user slice")
    node.add_argument("--seed", type=int, default=0)
    node.add_argument("--exchange-interval", type=float, default=0.5)
    node.add_argument("--histogram-interval", type=float, default=5.0)
    node.add_argument("--refresh-interval", type=float, default=0.5)
    node.add_argument("--tick-interval", type=float, default=0.05)
    node.add_argument("--time-factor", type=float, default=1.0)
    node.add_argument("--virtual-epoch", type=float, default=None,
                      help="shared wall-clock epoch aligning the fleet's "
                           "virtual clocks")

    query = sub.add_parser("query", help="query a running aequusd")
    query.add_argument("action",
                       choices=["fairshare", "vector", "resolve", "report",
                                "ping", "info", "batch"])
    query.add_argument("args", nargs="*",
                       help="users (fairshare/vector/resolve/batch) or "
                            "USER START END (report)")
    query.add_argument("--host", default="127.0.0.1")
    query.add_argument("--port", type=int, default=4730)
    query.add_argument("--cores", type=int, default=1,
                       help="cores for 'report'")
    query.add_argument("--timeout", type=float, default=5.0)

    probe = sub.add_parser("probe", help="health-probe a running aequusd")
    probe.add_argument("--host", default="127.0.0.1")
    probe.add_argument("--port", type=int, default=4730)
    probe.add_argument("--stale-factor", type=float, default=2.0,
                       help="snapshot age threshold, in refresh intervals")
    probe.add_argument("--max-staleness", type=float, default=None,
                       metavar="SECONDS",
                       help="also fail (exit 1) when any remote origin's "
                            "usage horizon lags further than SECONDS")
    probe.add_argument("--timeout", type=float, default=5.0)
    probe.add_argument("--json", action="store_true",
                       help="emit one machine-readable JSON document "
                            "(snapshot seq, per-origin horizons, worker "
                            "identity) instead of human text; exit codes "
                            "are unchanged")

    top = sub.add_parser(
        "top", help="live per-site fleet table from a FleetCollector")
    top.add_argument("--target", action="append", default=[],
                     metavar="SITE=HOST:PORT", required=True,
                     help="one daemon's serve address (repeatable)")
    top.add_argument("--interval", type=float, default=1.0,
                     help="scrape/render interval in seconds")
    top.add_argument("--duration", type=float, default=0.0,
                     help="stop after this many seconds (0 = until Ctrl-C)")
    top.add_argument("--once", action="store_true",
                     help="two scrapes, one table, exit (for scripts/CI)")
    top.add_argument("--virtual-epoch", type=float, default=None,
                     help="fleet clock anchor (defaults to collector start)")
    top.add_argument("--timeout", type=float, default=5.0)

    metrics = sub.add_parser("metrics",
                             help="scrape Prometheus metrics from aequusd")
    metrics.add_argument("--host", default="127.0.0.1")
    metrics.add_argument("--port", type=int, default=4730)
    metrics.add_argument("--timeout", type=float, default=5.0)

    report = sub.add_parser("report",
                            help="render a markdown fairness report")
    report.add_argument("--host", default="127.0.0.1")
    report.add_argument("--port", type=int, default=4730)
    report.add_argument("--timeout", type=float, default=5.0)
    report.add_argument("--from", dest="from_file", default=None,
                        metavar="JSONL",
                        help="render from a recorder JSONL export instead "
                             "of querying a live daemon")
    report.add_argument("--out", default=None, metavar="PATH",
                        help="write the report to PATH instead of stdout")
    report.add_argument("--grid", action="store_true",
                        help="fleet mode: scrape every --target daemon "
                             "through a FleetCollector and render the "
                             "merged fleet series")
    report.add_argument("--target", action="append", default=[],
                        metavar="SITE=HOST:PORT",
                        help="daemon serve address for --grid (repeatable)")
    report.add_argument("--samples", type=int, default=3,
                        help="collector scrapes to take for --grid")
    report.add_argument("--interval", type=float, default=1.0,
                        help="seconds between --grid scrapes")
    report.add_argument("--virtual-epoch", type=float, default=None,
                        help="fleet clock anchor for --grid")
    return parser


def _cmd_generate(args) -> int:
    from .workload.reference import build_testbed_trace, generate_reference_trace

    if args.testbed:
        trace = build_testbed_trace(n_jobs=args.jobs, span=args.span,
                                    total_cores=args.cores, seed=args.seed,
                                    bursty=args.bursty)
    else:
        trace = generate_reference_trace(n_jobs=args.jobs, seed=args.seed,
                                         pollution=not args.no_pollution)
    trace.save(args.out)
    print(f"wrote {trace.n_jobs} jobs ({len(trace.users())} users, "
          f"span {trace.span:.0f}s) to {args.out}")
    return 0


def _cmd_fit(args) -> int:
    from .workload.analysis import categorize_users, clean_trace, detect_phases
    from .workload.fitting import best_fit, whole_second_median
    from .workload.trace import Trace

    trace = Trace.load(args.trace)
    clean, report = clean_trace(trace)
    print(f"cleaned: removed {report.removed_job_fraction:.1%} of jobs, "
          f"{report.removed_usage_fraction:.2%} of usage")
    cats = categorize_users(clean)
    labeled = cats.relabel(clean)
    print("user categories:")
    for label in cats.category_names():
        print(f"  {label:<6} usage {cats.usage_shares.get(label, 0.0):.2%}  "
              f"jobs {cats.job_shares.get(label, 0.0):.2%}")
    import numpy as np
    rng = np.random.default_rng(args.seed)
    print("\narrival fits:")
    for user in cats.category_names():
        times = labeled.arrival_times(user)
        if times.size < 16:
            print(f"  {user:<6} (too few jobs to fit)")
            continue
        fit = best_fit(times, subsample=args.subsample, rng=rng)
        median = whole_second_median(labeled.inter_arrival_times(user))
        print(f"  {user:<6} median={median:.0f}s  {fit.fitted.describe()}  "
              f"KS={fit.ks:.2f}")
    print("\nduration fits:")
    for user in cats.category_names():
        durations = labeled.durations(user)
        if durations.size < 16:
            print(f"  {user:<6} (too few jobs to fit)")
            continue
        fit = best_fit(durations, subsample=args.subsample, rng=rng)
        print(f"  {user:<6} median={whole_second_median(durations):.0f}s  "
              f"{fit.fitted.describe()}  KS={fit.ks:.2f}")
    return 0


def _cmd_run(args) -> int:
    from .experiments import scenarios

    kwargs = dict(n_jobs=args.jobs, span=args.span, n_sites=args.sites,
                  hosts_per_site=args.hosts, seed=args.seed)
    if args.scenario == "baseline":
        result = scenarios.baseline(**kwargs)
    elif args.scenario == "non-optimal":
        result = scenarios.non_optimal_policy(**kwargs)
    elif args.scenario == "bursty":
        result = scenarios.bursty(**kwargs)
    else:
        kwargs["n_sites"] = max(4, kwargs["n_sites"])
        outcome = scenarios.partial_participation(**kwargs)
        result = outcome.result
        print(f"read-only site: {outcome.read_only_site}; "
              f"local-only site: {outcome.local_only_site}")
    for row in result.summary_rows():
        print(row)
    return 0


def _cmd_probe(_args) -> int:
    from .experiments.projections import PAPER_TABLE1, regenerate_table1

    for row in regenerate_table1():
        match = "matches paper" if row.properties == PAPER_TABLE1[row.name] \
            else "DIFFERS from paper"
        print(f"{row.render()}   [{match}]")
    return 0


def _cmd_serve(args) -> int:
    from .serve.daemon import AequusDaemon, build_demo_site
    from .services.site import SiteConfig

    config = SiteConfig(fcs_refresh_interval=args.refresh_interval)
    engine, site = build_demo_site(args.users, seed=args.seed, config=config)
    json_log = None
    log_file = None
    if args.json_log == "-":
        json_log = sys.stderr
    elif args.json_log:
        log_file = json_log = open(args.json_log, "a", encoding="utf-8")
    recorder = None
    if args.record:
        from .obs.evaluate import FairnessRecorder
        interval = args.record_interval or args.refresh_interval
        recorder = FairnessRecorder([site], interval=interval)
    daemon = AequusDaemon(engine, site, host=args.host, port=args.port,
                          time_factor=args.time_factor, json_log=json_log,
                          recorder=recorder, workers=args.workers)
    daemon.start()
    sharding = f", {args.workers} workers (shm)" if args.workers else ""
    print(f"aequusd: site {site.name!r} ({args.users} users) on "
          f"{daemon.host}:{daemon.port}, refresh every "
          f"{args.refresh_interval:.0f}s{sharding} (Ctrl-C to stop)")
    try:
        import signal
        import time as _time
        # SIGTERM (plain `kill`, service managers) must take the same
        # clean path as Ctrl-C, or the recorder JSONL is never written.
        # One-shot: a repeat SIGTERM during cleanup must not abort the
        # flush (process supervisors often signal the whole group).
        def _terminate(signum, frame):
            signal.signal(signal.SIGTERM, signal.SIG_IGN)
            raise KeyboardInterrupt

        signal.signal(signal.SIGTERM, _terminate)
        while True:
            _time.sleep(3600.0)
    except KeyboardInterrupt:
        print("stopping")
    finally:
        daemon.stop()
        if recorder is not None:
            rows = recorder.store.to_jsonl(args.record)
            print(f"wrote {rows} fairness samples to {args.record}")
        if log_file is not None:
            log_file.close()
    return 0


def _cmd_grid(args) -> int:
    """Boot a loopback grid, converge, optionally break it, summarize."""
    import statistics

    from .grid.harness import GridHarness, GridSpec

    spec = GridSpec(sites=args.sites, users=args.users, seed=args.seed,
                    exchange_interval=args.exchange_interval,
                    refresh_interval=args.refresh_interval,
                    latency=args.latency, jitter=args.jitter,
                    proxies=not args.no_proxies)
    bound = max(5.0, 6 * spec.exchange_interval + 2 * spec.latency)
    with GridHarness(spec, workdir=args.workdir) as grid:
        names = spec.site_names()
        print(f"grid: {spec.sites} daemons up "
              f"(serve ports {[grid.serve_ports[n] for n in names]})")
        waited = grid.wait_converged(max_staleness=bound, timeout=60.0)
        print(f"grid: converged below {bound:.1f}s staleness "
              f"in {waited:.1f}s")
        if args.demo_faults:
            if args.no_proxies:
                print("grid: --demo-faults needs proxies")
                return 2
            a, b = names[0], names[1]
            print(f"grid: partitioning {a}<->{b}")
            grid.partition(a, b)
            import time as _time
            _time.sleep(4 * spec.exchange_interval)
            lag = grid.remote_staleness(a).get(b, 0.0)
            print(f"grid: {a} sees {b} staleness {lag:.1f}s while split")
            grid.heal(a, b)
            victim = names[-1]
            print(f"grid: killing and restarting {victim}")
            grid.restart(victim)
            waited = grid.wait_converged(max_staleness=bound, timeout=60.0)
            print(f"grid: recovered (converged again in {waited:.1f}s)")
        samples = grid.staleness_samples(args.duration)
        if samples:
            samples.sort()
            p50 = statistics.median(samples)
            p99 = samples[min(len(samples) - 1,
                              int(0.99 * (len(samples) - 1)))]
            print(f"grid: staleness over {args.duration:.0f}s — "
                  f"p50 {p50:.2f}s p99 {p99:.2f}s ({len(samples)} samples)")
        total_wire = sum(grid.wire_bytes(n) for n in names)
        print(f"grid: exchange payload total {total_wire:,.0f} modeled "
              f"bytes across {spec.sites} sites")
    return 0


def _cmd_grid_node(args) -> int:
    from .grid.node import run_node

    return run_node(args)


def _cmd_query(args) -> int:
    from .serve.client import AequusServerError, AequusTransportError, \
        SyncAequusClient
    from .services.irs import IdentityResolutionError

    try:
        with SyncAequusClient(args.host, args.port,
                              timeout=args.timeout) as client:
            action = args.action
            if action == "fairshare":
                for user in args.args:
                    value, known = client.lookup_fairshare(user)
                    print(f"{user}\t{value:.6f}" +
                          ("" if known else "\t(unknown user)"))
            elif action == "vector":
                for user in args.args:
                    vector = client.get_vector(user)
                    print(f"{user}\t{list(vector.quantized())}")
            elif action == "resolve":
                for user in args.args:
                    print(f"{user}\t{client.resolve_identity(user)}")
            elif action == "report":
                if len(args.args) != 3:
                    print("report needs: USER START END")
                    return 2
                user, start, end = args.args
                client.report_usage(user, float(start), float(end),
                                    cores=args.cores)
                print(f"reported {float(end) - float(start):.0f}s x "
                      f"{args.cores} cores for {user}")
            elif action == "ping":
                reply = client.ping()
                print(f"pong (protocol ok): {reply.get('pong')}")
            elif action == "info":
                import json as _json
                print(_json.dumps(client.info(), indent=2))
            elif action == "batch":
                values = client.batch_lookup_fairshare(args.args)
                for user in args.args:
                    value, known = values.get(user, (float("nan"), False))
                    print(f"{user}\t{value:.6f}" +
                          ("" if known else "\t(unknown user)"))
    except (AequusTransportError, ConnectionError) as exc:
        print(f"transport error: {exc}")
        return 1
    except (AequusServerError, IdentityResolutionError) as exc:
        print(f"server error: {exc}")
        return 1
    return 0


def _cmd_probe_daemon(args) -> int:
    """Health probe; exit 1 on a stale snapshot, 2 when unreachable/empty.

    With ``--json`` the same facts (and the same exit code) come back as
    one machine-readable document, so the grid harness and CI parse a
    stable schema instead of the human text lines.
    """
    import json as _json

    from .serve.client import AequusTransportError, SyncAequusClient

    emit = (lambda *a, **k: None) if args.json else print
    try:
        with SyncAequusClient(args.host, args.port, timeout=args.timeout,
                              retries=1) as client:
            reply = client.info()
    except (AequusTransportError, ConnectionError) as exc:
        if args.json:
            print(_json.dumps({"ok": False, "verdict": "unreachable",
                               "error": str(exc), "host": args.host,
                               "port": args.port}))
        else:
            print(f"probe: aequusd at {args.host}:{args.port} "
                  f"unreachable: {exc}")
        return 2
    info = reply.get("info", {})
    snapshot = info.get("snapshot")
    emit(f"probe: protocol v{reply.get('protocol')}")
    # worker identity (sharded servers say which process answered and how
    # many siblings it aggregates for); older servers omit "server"
    server = reply.get("server") or {}
    if server:
        line = (f"probe: server pid {server.get('pid')} "
                f"binary v{server.get('binary', 0)}")
        if "worker" in server:
            line += (f" worker {server['worker']}/{server.get('workers')}"
                     f" mode {server.get('mode', '?')}")
        emit(line)
    stats = reply.get("stats") or {}
    if "workers" in stats:
        emit(f"probe: workers {stats['workers']} "
             f"connections_active {stats.get('connections_active', 0)} "
             f"requests {stats.get('requests', 0)}")
    doc = {"ok": False, "verdict": "no_snapshot",
           "protocol": reply.get("protocol"), "server": server,
           "stats": stats, "snapshot": snapshot}

    def finish(code: int) -> int:
        if args.json:
            print(_json.dumps(doc, indent=2, sort_keys=True))
        return code

    if not snapshot:
        emit("probe: no snapshot published yet")
        return finish(2)
    age = float(info.get("snapshot_age", 0.0))
    interval = float(info.get("refresh_interval", 0.0))
    limit = args.stale_factor * interval
    emit(f"probe: site {snapshot['site']!r} epoch {snapshot['epoch']} "
         f"seq {snapshot['seq']} users {snapshot['users']}")
    # age, seq and the coarse verdict all come from the server's
    # SnapshotStore (one source of truth); older servers omit "staleness"
    verdict = info.get("staleness")
    emit(f"probe: snapshot age {age:.1f}s "
         f"(refresh interval {interval:.1f}s, stale limit {limit:.1f}s"
         + (f", {verdict}" if verdict else "") + ")")
    horizons = info.get("usage_horizons") or {}
    worst: float = 0.0
    for origin in sorted(horizons):
        entry = horizons[origin]
        staleness = float(entry.get("staleness", 0.0))
        worst = max(worst, staleness)
        emit(f"probe: origin {origin!r} horizon "
             f"{float(entry.get('horizon', 0.0)):.1f} "
             f"staleness {staleness:.1f}s")
    doc.update(snapshot_age=age, refresh_interval=interval,
               stale_limit=limit, staleness=verdict,
               usage_horizons=horizons, worst_origin_staleness=worst)
    if interval > 0 and age > limit:
        emit(f"probe: STALE — snapshot is {age / interval:.1f} refresh "
             "intervals old")
        doc["verdict"] = "stale_snapshot"
        return finish(1)
    if args.max_staleness is not None and horizons \
            and worst > args.max_staleness:
        emit(f"probe: STALE — worst origin usage horizon lags "
             f"{worst:.1f}s (> {args.max_staleness:.1f}s)")
        doc["verdict"] = "stale_origin"
        return finish(1)
    emit("probe: ok")
    doc.update(ok=True, verdict="ok")
    return finish(0)


def _parse_targets(specs: List[str]) -> dict:
    """``SITE=HOST:PORT`` args -> ``{site: (host, port)}``."""
    from .grid.node import parse_peer

    targets = {}
    for spec in specs:
        site, host, port = parse_peer(spec)
        targets[site] = (host, port)
    return targets


def _render_top(collector) -> str:
    """One frame of the ``top`` display: per-site rows + a fleet footer."""
    head = (f"{'SITE':<8} {'UP':<4} {'QPS':>8} {'STALE':>7} {'P50':>7} "
            f"{'P99':>7} {'FRM/S':>7} {'RECON':>6} {'DROP':>5}  COMPILES")
    lines = [head, "-" * len(head)]
    fleet_qps = 0.0
    worst = 0.0
    for row in collector.table():
        fleet_qps += row["qps"]
        worst = max(worst, row["staleness_now"])
        compiles = row["compiles"]
        kinds = "/".join(f"{kind[0]}:{int(count)}"
                         for kind, count in sorted(compiles.items())
                         if count) or "-"
        p99 = row["staleness_p99"]
        lines.append(
            f"{row['site']:<8} {'up' if row['up'] else 'DOWN':<4} "
            f"{row['qps']:>8.1f} {row['staleness_now']:>7.2f} "
            f"{row['staleness_p50']:>7.2f} "
            f"{'inf' if p99 == float('inf') else format(p99, '.2f'):>7} "
            f"{row['frames_out']:>7.1f} {int(row['reconnects']):>6} "
            f"{int(row['trace_dropped']):>5}  {kinds}")
    lines.append("")
    lines.append(f"fleet: qps {fleet_qps:.1f}  max staleness {worst:.2f}s  "
                 f"scrapes {collector.scrapes}  "
                 f"errors {collector.scrape_errors}  "
                 f"t={collector.now():.1f}s")
    return "\n".join(lines)


def _cmd_top(args) -> int:
    """Live fleet table: scrape every target daemon, render, repeat."""
    import time as _time

    from .obs.collector import FleetCollector

    try:
        targets = _parse_targets(args.target)
    except ValueError as exc:
        print(f"top: {exc}", file=sys.stderr)
        return 2
    epoch = args.virtual_epoch
    if epoch is None:
        epoch = _time.time()
    collector = FleetCollector(targets, interval=args.interval,
                               virtual_epoch=epoch, timeout=args.timeout)
    try:
        if args.once:
            # two scrapes so the rate columns (qps, frames/s) are real
            collector.scrape_once()
            _time.sleep(max(0.1, args.interval))
            collector.scrape_once()
            print(_render_top(collector))
            return 0
        deadline = None if args.duration <= 0 \
            else _time.monotonic() + args.duration
        while deadline is None or _time.monotonic() < deadline:
            started = _time.monotonic()
            collector.scrape_once()
            frame = _render_top(collector)
            if sys.stdout.isatty():
                sys.stdout.write("\x1b[2J\x1b[H")
            print(frame, flush=True)
            _time.sleep(max(0.0, args.interval
                            - (_time.monotonic() - started)))
    except KeyboardInterrupt:
        pass
    finally:
        collector.stop()
    return 0


def _cmd_metrics(args) -> int:
    """Scrape the METRICS op; prints the text exposition verbatim."""
    from .serve.client import AequusTransportError, SyncAequusClient

    try:
        with SyncAequusClient(args.host, args.port, timeout=args.timeout,
                              retries=1) as client:
            text = client.metrics()
    except (AequusTransportError, ConnectionError) as exc:
        print(f"metrics: aequusd at {args.host}:{args.port} "
              f"unreachable: {exc}", file=sys.stderr)
        return 2
    sys.stdout.write(text)
    return 0


def _cmd_report(args) -> int:
    """Render a fairness report (live daemon, fleet, or JSONL export)."""
    if args.grid:
        import time as _time

        from .obs.collector import FleetCollector
        from .obs.evaluate import render_report

        try:
            targets = _parse_targets(args.target)
        except ValueError as exc:
            print(f"report: {exc}", file=sys.stderr)
            return 2
        if not targets:
            print("report: --grid needs at least one --target",
                  file=sys.stderr)
            return 2
        epoch = args.virtual_epoch
        if epoch is None:
            epoch = _time.time()
        collector = FleetCollector(targets, interval=args.interval,
                                   virtual_epoch=epoch,
                                   timeout=args.timeout)
        try:
            for n in range(max(1, args.samples)):
                if n:
                    _time.sleep(args.interval)
                collector.scrape_once()
        finally:
            collector.stop()
        text = render_report(
            collector.store,
            title=f"Aequus fleet report — {len(targets)} sites")
    elif args.from_file:
        from .obs.evaluate import render_report
        from .obs.timeseries import SeriesStore

        store = SeriesStore.from_jsonl(args.from_file)
        text = render_report(
            store, title=f"Aequus fairness report — {args.from_file}")
    else:
        from .obs.evaluate import report_from_daemon
        from .serve.client import AequusTransportError, SyncAequusClient

        try:
            with SyncAequusClient(args.host, args.port, timeout=args.timeout,
                                  retries=1) as client:
                info = client.info().get("info", {})
                metrics_text = client.metrics()
        except (AequusTransportError, ConnectionError) as exc:
            print(f"report: aequusd at {args.host}:{args.port} "
                  f"unreachable: {exc}", file=sys.stderr)
            return 2
        text = report_from_daemon(info, metrics_text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as out:
            out.write(text)
        print(f"wrote report to {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "generate-trace": _cmd_generate,
        "fit": _cmd_fit,
        "run": _cmd_run,
        "probe-projections": _cmd_probe,
        "serve": _cmd_serve,
        "grid": _cmd_grid,
        "grid-node": _cmd_grid_node,
        "query": _cmd_query,
        "probe": _cmd_probe_daemon,
        "top": _cmd_top,
        "metrics": _cmd_metrics,
        "report": _cmd_report,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
